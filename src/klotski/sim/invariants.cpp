#include "klotski/sim/invariants.h"

#include <cstdio>

#include "klotski/json/json.h"

namespace klotski::sim {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Exact decimal form (shortest round-trip, via the JSON writer's to_chars
/// path) so trajectory lines are byte-comparable across runs.
std::string exact(double v) { return json::dump(json::Value(v)); }

}  // namespace

InvariantChecker::InvariantChecker(migration::MigrationTask& task,
                                   const pipeline::CheckerConfig& config,
                                   const core::PlannerOptions& planner_options)
    : task_(&task),
      config_(config),
      cost_(planner_options.alpha, planner_options.type_weights),
      persistent_router_(*task.topo, config.routing),
      prev_done_(task.blocks.size(), 0) {}

void InvariantChecker::seed_from(const pipeline::ReplanCheckpoint& checkpoint) {
  prev_done_ = checkpoint.done;
  prev_phases_ = checkpoint.phases_executed;
  prev_step_ = checkpoint.step - 1;
  last_type_ = checkpoint.last_type;
  expected_cost_ = checkpoint.executed_cost;
}

void InvariantChecker::violation(const pipeline::PhaseObservation& observation,
                                 std::string what) {
  if (violations_.size() >= kMaxViolations) return;
  violations_.push_back(InvariantViolation{observation.phases_executed,
                                           observation.step, std::move(what)});
}

void InvariantChecker::observe(const pipeline::PhaseObservation& observation) {
  topo::Topology& topo = observation.topo;

  // 3. Monotone progress.
  if (observation.phases_executed != prev_phases_ + 1) {
    violation(observation,
              "phase counter jumped from " + std::to_string(prev_phases_) +
                  " to " + std::to_string(observation.phases_executed));
  }
  if (observation.step < prev_step_) {
    violation(observation, "step went backwards: " +
                               std::to_string(prev_step_) + " -> " +
                               std::to_string(observation.step));
  }
  const auto type = static_cast<std::size_t>(observation.type);
  for (std::size_t t = 0; t < observation.done.size(); ++t) {
    const std::int32_t expected =
        prev_done_[t] + (t == type ? observation.blocks : 0);
    if (observation.done[t] != expected) {
      violation(observation,
                "done[" + std::to_string(t) + "] is " +
                    std::to_string(observation.done[t]) + ", expected " +
                    std::to_string(expected));
      break;
    }
  }

  // 4. Cost accounting: re-accumulate in the driver's order (one transition
  // per block) so the comparison is bit-exact.
  for (int b = 0; b < observation.blocks; ++b) {
    expected_cost_ += cost_.transition_cost(last_type_, observation.type);
    last_type_ = observation.type;
  }
  if (observation.executed_cost != expected_cost_) {
    violation(observation, "executed_cost " + exact(observation.executed_cost) +
                               " != re-accumulated " + exact(expected_cost_));
  }

  // 1. Safety of the executed state under ground-truth demands.
  {
    migration::MigrationTask probe = *task_;  // shallow: same topology
    probe.demands = observation.demands;
    probe.original_state = topo::TopologyState::capture(topo);
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(probe, config_);
    const constraints::Verdict verdict = bundle.checker->check(topo);
    if (!verdict.satisfied) {
      violation(observation,
                "executed state violates constraints: " + verdict.violation);
    }
  }

  // 2a. Journal consistency: the trajectory-long router (incremental
  // liveness refresh) must agree bit-for-bit with a fresh router.
  {
    traffic::LoadVector incremental;
    traffic::LoadVector fresh;
    std::string failed_incremental;
    std::string failed_fresh;
    const bool ok_incremental = persistent_router_.assign_all(
        observation.demands, incremental, &failed_incremental);
    traffic::EcmpRouter fresh_router(topo, config_.routing);
    const bool ok_fresh =
        fresh_router.assign_all(observation.demands, fresh, &failed_fresh);
    if (ok_incremental != ok_fresh || failed_incremental != failed_fresh) {
      violation(observation,
                "incremental router verdict diverged from fresh router");
    } else if (ok_incremental && incremental != fresh) {
      violation(observation,
                "incremental router loads diverged from fresh router");
    }
  }

  // 5. Incremental symmetry equals a full recompute on the executed state.
  {
    const migration::SymmetryPartition& incremental =
        persistent_symmetry_.refresh(topo);
    const migration::SymmetryPartition fresh =
        migration::compute_symmetry(topo);
    if (incremental.class_of != fresh.class_of ||
        incremental.blocks != fresh.blocks) {
      violation(observation,
                "incremental symmetry diverged from full recompute");
    }
  }

  // 2b. Packed liveness words match the per-circuit predicate.
  {
    std::vector<std::uint64_t> words;
    topo.liveness_words(words);
    for (std::size_t c = 0; c < topo.num_circuits(); ++c) {
      const bool packed = (words[c >> 6] >> (c & 63)) & 1;
      if (packed !=
          topo.circuit_carries_traffic(static_cast<topo::CircuitId>(c))) {
        violation(observation, "liveness word mismatch at circuit " +
                                   std::to_string(c));
        break;
      }
    }
  }

  trajectory_.push_back(
      "phase " + std::to_string(observation.phases_executed) + " type=" +
      std::to_string(observation.type) + " blocks=" +
      std::to_string(observation.blocks) + " step=" +
      std::to_string(observation.step) + " sig=" +
      hex64(topo::TopologyState::capture(topo).signature()) + " cost=" +
      exact(observation.executed_cost));

  prev_done_ = observation.done;
  prev_phases_ = observation.phases_executed;
  prev_step_ = observation.step;
}

void InvariantChecker::finish(const pipeline::ReplanResult& result) {
  if (result.phases_executed != prev_phases_) {
    violations_.push_back(InvariantViolation{
        prev_phases_, prev_step_,
        "result.phases_executed " + std::to_string(result.phases_executed) +
            " != observed " + std::to_string(prev_phases_)});
  }
  if (result.executed_cost != expected_cost_) {
    violations_.push_back(InvariantViolation{
        prev_phases_, prev_step_,
        "result.executed_cost " + exact(result.executed_cost) +
            " != observed " + exact(expected_cost_)});
  }
  if (result.warm_attempts != result.warm_wins + result.fallback_full) {
    violations_.push_back(InvariantViolation{
        prev_phases_, prev_step_,
        "warm accounting broken: attempts " +
            std::to_string(result.warm_attempts) + " != wins " +
            std::to_string(result.warm_wins) + " + full fallbacks " +
            std::to_string(result.fallback_full)});
  }
}

}  // namespace klotski::sim
