#include "klotski/sim/chaos.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "klotski/json/json.h"
#include "klotski/obs/metrics.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/sim/invariants.h"
#include "klotski/util/thread_budget.h"

namespace klotski::sim {

namespace {

struct RunOutput {
  pipeline::ReplanResult result;
  std::vector<std::string> trajectory;
  std::vector<InvariantViolation> violations;
};

/// One full (or resumed) pass of the driver under the script, observed by a
/// fresh InvariantChecker. `checkpoints_out` collects every checkpoint when
/// non-null; `resume` continues a previous run.
RunOutput run_once(migration::MigrationTask& task, const ChaosParams& params,
                   const FaultScript& script,
                   const pipeline::ReplanCheckpoint* resume,
                   std::vector<pipeline::ReplanCheckpoint>* checkpoints_out) {
  traffic::Forecaster forecaster(task.demands, params.growth_per_step);
  for (const traffic::SurgeEvent& surge : script.surges) {
    forecaster.add_surge(surge);
  }
  for (const traffic::ForecastBias& bias : script.biases) {
    forecaster.add_bias(bias);
  }
  ScriptInjector injector(script, *task.topo);
  const std::unique_ptr<core::Planner> planner =
      pipeline::make_planner(params.planner);

  pipeline::ReplanOptions options;
  options.checker = params.checker;
  options.planner_options = params.planner_options;
  options.demand_change_threshold = params.demand_change_threshold;
  options.max_phase_retries = params.max_phase_retries;
  options.backoff_steps = params.backoff_steps;
  options.max_backoff_steps = params.max_backoff_steps;
  options.max_replans = params.max_replans;
  options.fallback_planner = params.fallback_planner;
  options.warm_repair = params.warm_repair;
  options.repair_cost_slack = params.repair_cost_slack;
  options.injector = &injector;

  InvariantChecker invariants(task, options.checker, options.planner_options);
  if (resume != nullptr) {
    invariants.seed_from(*resume);
    options.resume = resume;
  }
  options.observer = [&invariants](const pipeline::PhaseObservation& obs) {
    invariants.observe(obs);
  };
  if (checkpoints_out != nullptr) {
    options.checkpoint_sink = [checkpoints_out](
                                  const pipeline::ReplanCheckpoint& cp) {
      checkpoints_out->push_back(cp);
    };
  }

  RunOutput out;
  out.result = pipeline::execute_with_replanning(task, *planner, forecaster,
                                                 options);
  injector.restore_capacities();
  invariants.finish(out.result);
  out.trajectory = invariants.trajectory();
  out.violations = invariants.violations();
  return out;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

ChaosVerdict run_seed_impl(std::uint64_t seed, const ChaosParams& params) {
  ChaosVerdict verdict;
  verdict.seed = seed;

  migration::MigrationCase mcase = pipeline::build_family_experiment(
      params.family, params.preset, params.scale);
  migration::MigrationTask& task = mcase.task;

  FaultScriptParams fault_params = params.faults;
  fault_params.horizon = task.total_actions() * 2 + 16;
  fault_params.expected_phases = std::max(4, task.total_actions());
  const FaultScript script = make_fault_script(seed, task, fault_params);

  std::vector<pipeline::ReplanCheckpoint> checkpoints;
  const RunOutput run = run_once(task, params, script, nullptr, &checkpoints);

  verdict.completed = run.result.completed;
  verdict.failure = run.result.failure;
  verdict.invariants_ok = run.violations.empty();
  if (!verdict.invariants_ok && verdict.failure.empty()) {
    verdict.failure = run.violations.front().what;
  }
  for (const InvariantViolation& v : run.violations) {
    verdict.violations.push_back("phase " + std::to_string(v.phases_executed) +
                                 " step " + std::to_string(v.step) + ": " +
                                 v.what);
  }
  verdict.trajectory = join_lines(run.trajectory);
  verdict.phases = run.result.phases_executed;
  verdict.replans = run.result.replans;
  verdict.phase_retries = run.result.phase_retries;
  verdict.fallback_plans = run.result.fallback_plans;
  verdict.executed_cost = run.result.executed_cost;
  verdict.warm_attempts = run.result.warm_attempts;
  verdict.warm_wins = run.result.warm_wins;
  verdict.fallback_full = run.result.fallback_full;
  verdict.rounds = run.result.rounds;

  // Kill-and-resume oracle: round-trip a mid-run checkpoint through JSON,
  // re-execute from it in a fresh world (fresh topology, forecaster,
  // injector), and require the continuation to be byte-identical.
  if (params.checkpoint_self_test && verdict.completed &&
      checkpoints.size() >= 2) {
    obs::Registry::global().counter("chaos.resume_checks").inc();
    const pipeline::ReplanCheckpoint& mid =
        checkpoints[checkpoints.size() / 2];
    const pipeline::ReplanCheckpoint restored =
        pipeline::ReplanCheckpoint::from_json(
            json::parse(json::dump(mid.to_json())));

    migration::MigrationCase mcase2 = pipeline::build_family_experiment(
        params.family, params.preset, params.scale);
    const FaultScript script2 =
        make_fault_script(seed, mcase2.task, fault_params);
    const RunOutput resumed =
        run_once(mcase2.task, params, script2, &restored, nullptr);

    const std::vector<std::string>& full = run.trajectory;
    const auto skip = static_cast<std::size_t>(restored.phases_executed);
    const bool suffix_matches =
        skip <= full.size() &&
        std::equal(full.begin() + static_cast<std::ptrdiff_t>(skip),
                   full.end(), resumed.trajectory.begin(),
                   resumed.trajectory.end());
    verdict.resume_ok =
        resumed.result.completed && resumed.violations.empty() &&
        resumed.result.phases_executed == run.result.phases_executed &&
        resumed.result.executed_cost == run.result.executed_cost &&
        resumed.result.replans == run.result.replans &&
        resumed.result.warm_attempts == run.result.warm_attempts &&
        resumed.result.warm_wins == run.result.warm_wins &&
        resumed.result.fallback_full == run.result.fallback_full &&
        suffix_matches;
    if (!verdict.resume_ok && verdict.failure.empty()) {
      verdict.failure = "checkpoint resume diverged from uninterrupted run";
    }
  }
  return verdict;
}

}  // namespace

ChaosVerdict run_chaos_seed(std::uint64_t seed, const ChaosParams& params) {
  obs::Registry::global().counter("chaos.seeds_run").inc();
  ChaosVerdict verdict;
  verdict.seed = seed;
  try {
    verdict = run_seed_impl(seed, params);
  } catch (const std::exception& e) {
    verdict.completed = false;
    verdict.invariants_ok = false;
    verdict.failure = std::string("exception: ") + e.what();
  }
  if (!verdict.passed()) {
    obs::Registry::global().counter("chaos.seeds_failed").inc();
  }
  if (!verdict.invariants_ok) {
    obs::Registry::global()
        .counter("chaos.invariant_violations")
        .inc(static_cast<long long>(std::max<std::size_t>(
            verdict.violations.size(), 1)));
  }
  return verdict;
}

ChaosSweepResult run_chaos_sweep(std::uint64_t first_seed, int num_seeds,
                                 int threads, const ChaosParams& params) {
  ChaosSweepResult result;
  if (num_seeds <= 0) return result;
  result.verdicts.resize(static_cast<std::size_t>(num_seeds));

  std::atomic<int> next{0};
  const auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= num_seeds) return;
      result.verdicts[static_cast<std::size_t>(i)] = run_chaos_seed(
          first_seed + static_cast<std::uint64_t>(i), params);
    }
  };

  // Shared oversubscription rule: never spawn more sweep workers than
  // seeds, never fewer than one (util/thread_budget.h).
  const int pool =
      util::split_thread_budget(threads, 1, num_seeds).outer;
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(pool));
    for (int i = 0; i < pool; ++i) workers.emplace_back(worker);
    for (std::thread& w : workers) w.join();
  }

  for (const ChaosVerdict& v : result.verdicts) {
    if (!v.passed()) ++result.failures;
  }
  return result;
}

}  // namespace klotski::sim
