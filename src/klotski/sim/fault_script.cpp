#include "klotski/sim/fault_script.h"

#include <algorithm>

#include "klotski/util/hash.h"
#include "klotski/util/rng.h"

namespace klotski::sim {

namespace {

/// Flags every element some block operates; faults must avoid those.
void operated_elements(const migration::MigrationTask& task,
                       std::vector<char>& switches,
                       std::vector<char>& circuits) {
  switches.assign(task.topo->num_switches(), 0);
  circuits.assign(task.topo->num_circuits(), 0);
  for (const auto& type_blocks : task.blocks) {
    for (const migration::OperationBlock& block : type_blocks) {
      for (const migration::ElementOp& op : block.ops) {
        if (op.kind == migration::ElementOp::Kind::kSwitch) {
          switches[static_cast<std::size_t>(op.id)] = 1;
        } else {
          circuits[static_cast<std::size_t>(op.id)] = 1;
        }
      }
    }
  }
}

/// A window inside [1, horizon) — faults never start at step 0, so the very
/// first planning round sees the clean topology.
std::pair<int, int> sample_window(util::Rng& rng, int horizon) {
  const int max_start = std::max(2, horizon * 2 / 3);
  const int start = static_cast<int>(rng.uniform_int(1, max_start));
  const int len =
      static_cast<int>(rng.uniform_int(2, std::max(3, horizon / 3)));
  return {start, start + len};
}

traffic::DemandKind sample_kind(util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return traffic::DemandKind::kEgress;
    case 1: return traffic::DemandKind::kIngress;
    default: return traffic::DemandKind::kEastWest;
  }
}

}  // namespace

FaultScript make_fault_script(std::uint64_t seed,
                              const migration::MigrationTask& task,
                              const FaultScriptParams& params) {
  FaultScript script;
  util::Rng rng(util::hash_combine(seed, 0xC4A05'F001ULL));

  std::vector<char> op_switch;
  std::vector<char> op_circuit;
  operated_elements(task, op_switch, op_circuit);

  // Candidate pools: elements active in the original state that no block
  // operates. Id order keeps the script independent of container layout.
  std::vector<topo::CircuitId> circuits;
  for (std::size_t c = 0; c < task.topo->num_circuits(); ++c) {
    if (!op_circuit[c] &&
        task.original_state.circuit_states[c] == topo::ElementState::kActive) {
      circuits.push_back(static_cast<topo::CircuitId>(c));
    }
  }
  std::vector<topo::SwitchId> switches;
  for (std::size_t s = 0; s < task.topo->num_switches(); ++s) {
    if (op_switch[s]) continue;
    if (task.original_state.switch_states[s] != topo::ElementState::kActive) {
      continue;
    }
    // Only drain redundant mid-layer switches; draining a traffic source or
    // an aggregation point can make a demand structurally unroutable for
    // the whole window, which models an outage rather than a degradation.
    const topo::SwitchRole role = task.topo->sw(static_cast<topo::SwitchId>(s)).role;
    if (role == topo::SwitchRole::kFsw || role == topo::SwitchRole::kSsw) {
      switches.push_back(static_cast<topo::SwitchId>(s));
    }
  }

  const int horizon = std::max(params.horizon, 8);
  for (int i = 0; i < params.circuit_degrades && !circuits.empty(); ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCircuitDegrade;
    std::tie(e.start_step, e.end_step) = sample_window(rng, horizon);
    e.circuit = circuits[rng.index(circuits.size())];
    e.factor =
        rng.uniform_real(params.degrade_factor_min, params.degrade_factor_max);
    script.events.push_back(e);
  }
  for (int i = 0; i < params.circuit_failures && !circuits.empty(); ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCircuitFail;
    std::tie(e.start_step, e.end_step) = sample_window(rng, horizon);
    e.circuit = circuits[rng.index(circuits.size())];
    script.events.push_back(e);
  }
  for (int i = 0; i < params.switch_drains && !switches.empty(); ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSwitchDrain;
    std::tie(e.start_step, e.end_step) = sample_window(rng, horizon);
    e.sw = switches[rng.index(switches.size())];
    script.events.push_back(e);
  }

  // Step failures: distinct phase indices (the driver retries a failed phase
  // and the retry must be allowed to succeed).
  std::vector<int> failed_phases;
  for (int i = 0; i < params.step_failures; ++i) {
    const int phase = static_cast<int>(
        rng.uniform_int(0, std::max(1, params.expected_phases) - 1));
    if (std::find(failed_phases.begin(), failed_phases.end(), phase) !=
        failed_phases.end()) {
      continue;
    }
    failed_phases.push_back(phase);
    FaultEvent e;
    e.kind = FaultKind::kStepFailure;
    e.phase = phase;
    e.ops_applied =
        static_cast<int>(rng.uniform_int(0, std::max(0, params.max_partial_ops)));
    script.events.push_back(e);
  }

  for (int i = 0; i < params.demand_events; ++i) {
    traffic::SurgeEvent surge;
    surge.name = "chaos-demand-" + std::to_string(i);
    surge.kind = sample_kind(rng);
    std::tie(surge.start_step, surge.end_step) = sample_window(rng, horizon);
    surge.factor =
        rng.uniform_real(params.surge_factor_min, params.surge_factor_max);
    script.surges.push_back(surge);
  }
  for (int i = 0; i < params.forecast_errors; ++i) {
    traffic::ForecastBias bias;
    bias.name = "chaos-bias-" + std::to_string(i);
    bias.kind = sample_kind(rng);
    std::tie(bias.start_step, bias.end_step) = sample_window(rng, horizon);
    bias.factor =
        rng.uniform_real(params.bias_factor_min, params.bias_factor_max);
    script.biases.push_back(bias);
  }
  return script;
}

ScriptInjector::ScriptInjector(const FaultScript& script, topo::Topology& topo)
    : script_(script), topo_(&topo) {
  for (const FaultEvent& e : script_.events) {
    if (e.kind != FaultKind::kCircuitDegrade) continue;
    const auto already =
        std::find_if(degraded_.begin(), degraded_.end(),
                     [&](const auto& p) { return p.first == e.circuit; });
    if (already == degraded_.end()) {
      degraded_.emplace_back(e.circuit, topo.circuit(e.circuit).capacity_tbps);
    }
  }
}

ScriptInjector::~ScriptInjector() { restore_capacities(); }

std::uint64_t ScriptInjector::fault_epoch(int step) const {
  std::uint64_t h = 0;
  bool any = false;
  for (std::size_t i = 0; i < script_.events.size(); ++i) {
    if (script_.events[i].active_at(step)) {
      h = util::hash_combine(h ? h : 0xFA017ULL, i);
      any = true;
    }
  }
  return any ? h : 0;
}

void ScriptInjector::apply(int step, topo::Topology& topo,
                           std::vector<topo::SwitchId>& drained_switches,
                           std::vector<topo::CircuitId>& drained_circuits) {
  // Capacities are a pure function of the step: original × the product of
  // the active degrade factors (windows that ended restore automatically).
  bool changed = false;
  for (const auto& [circuit, original] : degraded_) {
    double factor = 1.0;
    for (const FaultEvent& e : script_.events) {
      if (e.kind == FaultKind::kCircuitDegrade && e.circuit == circuit &&
          e.active_at(step)) {
        factor *= e.factor;
      }
    }
    const double target = original * factor;
    if (topo.circuit(circuit).capacity_tbps != target) {
      topo.circuit(circuit).capacity_tbps = target;
      changed = true;
    }
  }
  if (changed) topo.bump_state_version();

  for (const FaultEvent& e : script_.events) {
    if (!e.active_at(step)) continue;
    if (e.kind == FaultKind::kCircuitFail) {
      drained_circuits.push_back(e.circuit);
    } else if (e.kind == FaultKind::kSwitchDrain) {
      drained_switches.push_back(e.sw);
    }
  }
}

int ScriptInjector::phase_failure_ops(int phases_executed, int attempt) {
  if (attempt > 0) return -1;  // retried attempts succeed
  for (const FaultEvent& e : script_.events) {
    if (e.kind == FaultKind::kStepFailure && e.phase == phases_executed) {
      return e.ops_applied;
    }
  }
  return -1;
}

void ScriptInjector::restore_capacities() {
  bool changed = false;
  for (const auto& [circuit, original] : degraded_) {
    if (topo_->circuit(circuit).capacity_tbps != original) {
      topo_->circuit(circuit).capacity_tbps = original;
      changed = true;
    }
  }
  if (changed) topo_->bump_state_version();
}

}  // namespace klotski::sim
