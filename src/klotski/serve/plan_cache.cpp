#include "klotski/serve/plan_cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <utility>

#include "klotski/obs/metrics.h"
#include "klotski/util/file.h"
#include "klotski/util/hash.h"

namespace klotski::serve {

namespace {

/// Spill header magic. v1 files (raw payload, pre-atomic-write) are
/// deliberately not readable: they cannot be told apart from a torn write,
/// so they re-read as misses and the next fulfill rewrites them as v2.
constexpr const char* kSpillMagic = "klotski-spill-v2";

std::string spill_path(const std::string& dir, const std::string& key) {
  return dir + "/" + key + ".json";
}

}  // namespace

std::string PlanCache::encode_spill(const std::string& payload) {
  std::string out = kSpillMagic;
  out += " ";
  out += std::to_string(payload.size());
  out += " ";
  out += util::stable_digest_hex(payload);
  out += "\n";
  out += payload;
  return out;
}

bool PlanCache::decode_spill(const std::string& file_bytes,
                             std::string& payload_out) {
  const std::size_t newline = file_bytes.find('\n');
  if (newline == std::string::npos) return false;
  const std::string header = file_bytes.substr(0, newline);

  const std::size_t sp1 = header.find(' ');
  if (sp1 == std::string::npos ||
      header.compare(0, sp1, kSpillMagic) != 0) {
    return false;
  }
  const std::size_t sp2 = header.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  std::size_t length = 0;
  try {
    std::size_t consumed = 0;
    const std::string len_text = header.substr(sp1 + 1, sp2 - sp1 - 1);
    length = std::stoull(len_text, &consumed);
    if (consumed != len_text.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  const std::string digest = header.substr(sp2 + 1);

  // A torn write (pre-rename crash, truncated copy) shows up as a short —
  // or, for an interleaved overwrite, long — payload, or a digest mismatch.
  if (file_bytes.size() - (newline + 1) != length) return false;
  const std::string_view payload(file_bytes.data() + newline + 1, length);
  if (util::stable_digest_hex(payload) != digest) return false;
  payload_out.assign(payload);
  return true;
}

PlanCache::PlanCache(const Options& options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  const auto shard_count = static_cast<std::size_t>(options_.shards);
  per_shard_capacity_ =
      std::max<std::size_t>(1, (options_.capacity + shard_count - 1) /
                                   shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!options_.spill_dir.empty()) {
    std::filesystem::create_directories(options_.spill_dir);
  }
}

PlanCache::Shard& PlanCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool PlanCache::read_spill(const std::string& key, std::string& text_out) {
  if (options_.spill_dir.empty()) return false;
  const std::string path = spill_path(options_.spill_dir, key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;
  std::string file_bytes;
  try {
    file_bytes = util::read_file(path);
  } catch (const std::exception&) {
    return false;
  }
  if (decode_spill(file_bytes, text_out)) return true;
  // Torn or foreign bytes: quarantine so the next fulfill rewrites a good
  // file, and make sure this never serves as a hit.
  std::filesystem::remove(path, ec);
  spill_corrupt_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("serve.cache_spill_corrupt").inc();
  return false;
}

void PlanCache::write_spill(const std::string& key, const std::string& text) {
  if (options_.spill_dir.empty()) return;
  const std::string path = spill_path(options_.spill_dir, key);
  // Atomic publish: a crash mid-write leaves only a temp file (ignored and
  // eventually overwritten), never a torn "<key>.json" that a restarted
  // daemon would serve as a hit. The temp name is unique per writer so two
  // owners of different keys — or a racing generation — never interleave.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(spill_seq_.fetch_add(1, std::memory_order_relaxed));
  try {
    util::write_file(tmp, encode_spill(text));
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  } catch (const std::exception&) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return;
  }
  spill_writes_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("serve.cache_spill_writes").inc();
}

PlanCache::Lookup PlanCache::acquire(const std::string& key) {
  Shard& shard = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(shard.mu);

    if (auto it = shard.completed.find(key); it != shard.completed.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("serve.cache_hits").inc();
      return Lookup{Outcome::kHit, it->second.text, nullptr};
    }

    if (auto it = shard.in_flight.find(key); it != shard.in_flight.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("serve.cache_coalesced").inc();
      return Lookup{Outcome::kWait, std::string(), it->second};
    }

    if (options_.spill_dir.empty()) {
      // No disk tier: become owner without dropping the shard lock.
      auto entry = std::make_shared<Entry>(key);
      shard.in_flight[key] = entry;
      misses_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("serve.cache_misses").inc();
      return Lookup{Outcome::kOwner, std::string(), entry};
    }
  }

  // Spill probe outside the shard lock: disk reads must not serialize the
  // other keys of this shard. Two racing readers of the same key may both
  // read the file; the re-insert below keeps only one copy.
  std::string text;
  if (read_spill(key, text)) {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (shard.completed.find(key) == shard.completed.end()) {
      shard.lru.push_front(key);
      shard.completed[key] = Completed{text, shard.lru.begin()};
      evict_shard_locked(shard);
    }
    spill_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_spill_hits").inc();
    return Lookup{Outcome::kHit, text, nullptr};
  }

  std::unique_lock<std::mutex> lock(shard.mu);
  // Re-check under the lock: another thread may have become owner (or
  // fulfilled) while this one probed the disk.
  if (auto it = shard.completed.find(key); it != shard.completed.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_hits").inc();
    return Lookup{Outcome::kHit, it->second.text, nullptr};
  }
  if (auto it = shard.in_flight.find(key); it != shard.in_flight.end()) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_coalesced").inc();
    return Lookup{Outcome::kWait, std::string(), it->second};
  }
  auto entry = std::make_shared<Entry>(key);
  shard.in_flight[key] = entry;
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("serve.cache_misses").inc();
  return Lookup{Outcome::kOwner, std::string(), entry};
}

void PlanCache::fulfill(const std::shared_ptr<Entry>& entry,
                        const std::string& text) {
  Shard& shard = shard_for(entry->key());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(entry->key());
    if (shard.completed.find(entry->key()) == shard.completed.end()) {
      shard.lru.push_front(entry->key());
      shard.completed[entry->key()] = Completed{text, shard.lru.begin()};
      evict_shard_locked(shard);
    }
  }
  write_spill(entry->key(), text);
  {
    std::lock_guard<std::mutex> lock(entry->mu_);
    entry->state_ = Entry::State::kDone;
    entry->text_ = text;
  }
  entry->cv_.notify_all();
}

void PlanCache::fail(const std::shared_ptr<Entry>& entry,
                     const std::string& error) {
  Shard& shard = shard_for(entry->key());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(entry->key());
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu_);
    entry->state_ = Entry::State::kFailed;
    entry->error_ = error;
  }
  entry->cv_.notify_all();
}

std::string PlanCache::wait(const std::shared_ptr<Entry>& entry) {
  std::unique_lock<std::mutex> lock(entry->mu_);
  entry->cv_.wait(lock,
                  [&] { return entry->state_ != Entry::State::kPending; });
  if (entry->state_ == Entry::State::kFailed) {
    throw std::runtime_error(entry->error_);
  }
  return entry->text_;
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.spill_hits = spill_hits_.load(std::memory_order_relaxed);
  stats.spill_writes = spill_writes_.load(std::memory_order_relaxed);
  stats.spill_corrupt = spill_corrupt_.load(std::memory_order_relaxed);
  stats.shards = options_.shards;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->completed.size();
    stats.in_flight += shard->in_flight.size();
  }
  return stats;
}

void PlanCache::evict_shard_locked(Shard& shard) {
  while (shard.completed.size() > per_shard_capacity_ &&
         !shard.lru.empty()) {
    shard.completed.erase(shard.lru.back());
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_evictions").inc();
  }
}

}  // namespace klotski::serve
