#include "klotski/serve/plan_cache.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "klotski/obs/metrics.h"
#include "klotski/util/file.h"

namespace klotski::serve {

namespace {

std::string spill_path(const std::string& dir, const std::string& key) {
  return dir + "/" + key + ".json";
}

}  // namespace

PlanCache::PlanCache(const Options& options) : options_(options) {
  if (!options_.spill_dir.empty()) {
    std::filesystem::create_directories(options_.spill_dir);
  }
}

PlanCache::Lookup PlanCache::acquire(const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);

  if (auto it = completed_.find(key); it != completed_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_hits").inc();
    return Lookup{Outcome::kHit, it->second.text, nullptr};
  }

  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_coalesced").inc();
    return Lookup{Outcome::kWait, std::string(), it->second};
  }

  if (!options_.spill_dir.empty()) {
    const std::string path = spill_path(options_.spill_dir, key);
    if (std::filesystem::exists(path)) {
      // Only this process writes the spill dir, so the file is complete;
      // re-enter it into the memory LRU like any other fulfillment.
      const std::string text = util::read_file(path);
      lru_.push_front(key);
      completed_[key] = Completed{text, lru_.begin()};
      evict_locked();
      spill_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("serve.cache_spill_hits").inc();
      return Lookup{Outcome::kHit, text, nullptr};
    }
  }

  auto entry = std::make_shared<Entry>(key);
  in_flight_[key] = entry;
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("serve.cache_misses").inc();
  return Lookup{Outcome::kOwner, std::string(), entry};
}

void PlanCache::fulfill(const std::shared_ptr<Entry>& entry,
                        const std::string& text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(entry->key());
    if (completed_.find(entry->key()) == completed_.end()) {
      lru_.push_front(entry->key());
      completed_[entry->key()] = Completed{text, lru_.begin()};
      evict_locked();
    }
  }
  if (!options_.spill_dir.empty()) {
    util::write_file(spill_path(options_.spill_dir, entry->key()), text);
    spill_writes_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_spill_writes").inc();
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu_);
    entry->state_ = Entry::State::kDone;
    entry->text_ = text;
  }
  entry->cv_.notify_all();
}

void PlanCache::fail(const std::shared_ptr<Entry>& entry,
                     const std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(entry->key());
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu_);
    entry->state_ = Entry::State::kFailed;
    entry->error_ = error;
  }
  entry->cv_.notify_all();
}

std::string PlanCache::wait(const std::shared_ptr<Entry>& entry) {
  std::unique_lock<std::mutex> lock(entry->mu_);
  entry->cv_.wait(lock,
                  [&] { return entry->state_ != Entry::State::kPending; });
  if (entry->state_ == Entry::State::kFailed) {
    throw std::runtime_error(entry->error_);
  }
  return entry->text_;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.spill_hits = spill_hits_.load(std::memory_order_relaxed);
  stats.spill_writes = spill_writes_.load(std::memory_order_relaxed);
  stats.entries = completed_.size();
  stats.in_flight = in_flight_.size();
  return stats;
}

void PlanCache::evict_locked() {
  while (completed_.size() > options_.capacity && !lru_.empty()) {
    completed_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.cache_evictions").inc();
  }
}

}  // namespace klotski::serve
