// Wire protocol of the Klotski plan service ("klotski.serve.v1").
//
// Transport: a POSIX stream socket carrying newline-delimited JSON — one
// request document per line, one response document per line, in order.
// There is deliberately no framing beyond '\n' and no external dependency:
// the in-tree JSON layer is the only serialization machinery, and a human
// can drive the daemon with `nc -U` for debugging.
//
// Request:  {"id": "...", "method": "...", "params": {...}}
//   id      optional client-chosen tag, echoed verbatim in the response
//   method  ping | stats | plan | audit | chaos | replan
//           | submit | poll | wait | cancel
//   params  method-specific object (see README "Plan service")
//
// Response: {"id": "...", "status": "...", "cached": bool,
//            "error": "...", "result": {...}}
//   status  "ok"         — result holds the method's payload
//           "error"      — error holds a diagnostic; result absent
//           "overloaded" — admission control rejected the request (queue
//                          full); retry with backoff. Never silently queued.
//           "draining"   — the daemon is shutting down and no longer
//                          admits work requests
//   cached  true when the result was served from the content-addressed
//           plan cache (or coalesced onto another in-flight computation)
//           rather than a fresh planner run
#pragma once

#include <string>

#include "klotski/json/json.h"

namespace klotski::serve {

inline constexpr const char* kProtocolSchema = "klotski.serve.v1";

struct Request {
  std::string id;      // optional; echoed back
  std::string method;  // validated by the service, not the parser
  json::Value params;  // object; empty object when omitted

  json::Value to_json() const;
};

/// Parses one request line. Throws std::invalid_argument (or
/// json::JsonError) on malformed input — the server turns that into a
/// status:"error" response rather than dropping the connection.
Request parse_request(const std::string& line);

struct Response {
  std::string id;
  std::string status = "ok";  // ok | error | overloaded | draining
  bool cached = false;
  std::string error;
  json::Value result;  // null unless status == "ok"

  bool ok() const { return status == "ok"; }

  json::Value to_json() const;
  /// Compact single-line serialization plus the terminating '\n'.
  std::string to_line() const;

  static Response parse(const std::string& line);

  static Response make_ok(const std::string& id, json::Value result,
                          bool cached = false);
  static Response make_error(const std::string& id, const std::string& error);
  static Response make_status(const std::string& id,
                              const std::string& status);
};

}  // namespace klotski::serve
