#include "klotski/serve/endpoint.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace klotski::serve {

namespace {

Endpoint parse_host_port(const std::string& spec, const std::string& rest) {
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == rest.size()) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': tcp form is HOST:PORT");
  }
  Endpoint out;
  out.kind = Endpoint::Kind::kTcp;
  out.host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  std::size_t consumed = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != port_text.size() || port > 65535) {
    throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                port_text + "'");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.empty()) throw std::invalid_argument("endpoint spec is empty");
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint out;
    out.kind = Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec + "': empty path");
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) return parse_host_port(spec, spec.substr(4));
  if (spec.find('/') != std::string::npos) {
    Endpoint out;
    out.kind = Kind::kUnix;
    out.path = spec;
    return out;
  }
  if (spec.find(':') != std::string::npos) return parse_host_port(spec, spec);
  throw std::invalid_argument(
      "endpoint '" + spec +
      "': want unix:PATH, tcp:HOST:PORT, a /path, or HOST:PORT");
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

void set_tcp_nodelay(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return;
  }
  if (addr.ss_family != AF_INET && addr.ss_family != AF_INET6) return;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.is_unix()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("endpoint: socket path too long: " +
                               endpoint.path);
    }
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("endpoint: socket: ") +
                               std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("endpoint: connect " + endpoint.describe() +
                               ": " + std::strerror(err));
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("endpoint: resolve " + endpoint.describe() +
                             ": " + ::gai_strerror(rc));
  }
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(found);
      set_tcp_nodelay(fd);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(found);
  throw std::runtime_error("endpoint: connect " + endpoint.describe() + ": " +
                           std::strerror(last_errno));
}

}  // namespace klotski::serve
