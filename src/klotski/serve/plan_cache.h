// Content-addressed plan cache with single-flight coalescing.
//
// Keys are json::content_hash digests of the canonicalized request (see
// canonical.h): bit-stable across runs and processes, so a spill directory
// written by one daemon generation is a warm cache for the next. Values are
// the exact response bytes (the pretty-printed plan JSON text the CLI would
// have written), so a cache hit is byte-identical to a cold run by
// construction.
//
// Single-flight: when N identical requests arrive concurrently, exactly one
// caller becomes the *owner* (runs the planner); the rest become *waiters*
// and block on the owner's entry. All N observers receive the same bytes
// and the planner runs once — the serve test asserts this with the
// serve.plan_runs counter.
//
// Completed entries live in a bounded LRU; in-flight entries are pinned and
// never evicted. With a spill directory configured, fulfilled entries are
// written through to "<dir>/<key>.json" and LRU-evicted keys remain
// servable from disk (a spill hit re-enters the memory LRU). Failures are
// never cached: the owner's error is delivered to the waiters of that
// flight only, and the next request recomputes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace klotski::serve {

class PlanCache {
 public:
  struct Options {
    std::size_t capacity = 128;  // completed entries held in memory
    std::string spill_dir;       // empty = no on-disk spill
  };

  /// Shared state of one in-flight computation. Owners fulfill or fail it;
  /// waiters block on it. Lifetime is managed by shared_ptr so a waiter can
  /// outlive the cache's bookkeeping for the flight.
  class Entry {
   public:
    explicit Entry(std::string key) : key_(std::move(key)) {}
    const std::string& key() const { return key_; }

   private:
    friend class PlanCache;
    enum class State { kPending, kDone, kFailed };

    std::string key_;
    std::mutex mu_;
    std::condition_variable cv_;
    State state_ = State::kPending;
    std::string text_;
    std::string error_;
  };

  enum class Outcome {
    kHit,    // text is the cached bytes; no work to do
    kOwner,  // caller must compute, then fulfill() or fail() the entry
    kWait,   // another caller is computing; block in wait()
  };

  struct Lookup {
    Outcome outcome = Outcome::kHit;
    std::string text;               // valid when kHit
    std::shared_ptr<Entry> entry;   // valid when kOwner / kWait
  };

  /// Always-on counters (independent of the obs enable flag) backing the
  /// daemon's `stats` endpoint.
  struct Stats {
    long long hits = 0;        // memory LRU hits
    long long misses = 0;      // owner flights started
    long long coalesced = 0;   // waiters attached to an in-flight entry
    long long evictions = 0;   // completed entries dropped from memory
    long long spill_hits = 0;  // served from the spill dir after eviction
    long long spill_writes = 0;
    std::size_t entries = 0;   // completed entries currently in memory
    std::size_t in_flight = 0;
  };

  explicit PlanCache(const Options& options);

  /// Single-flight lookup; see Outcome.
  Lookup acquire(const std::string& key);

  /// Owner side: publishes `text` for the entry's key, wakes the waiters,
  /// inserts into the LRU (evicting beyond capacity) and writes the spill
  /// file when configured.
  void fulfill(const std::shared_ptr<Entry>& entry, const std::string& text);

  /// Owner side: the computation failed. Waiters of this flight receive
  /// `error`; nothing is cached.
  void fail(const std::shared_ptr<Entry>& entry, const std::string& error);

  /// Waiter side: blocks until the owner fulfills or fails. Throws
  /// std::runtime_error carrying the owner's error on failure.
  std::string wait(const std::shared_ptr<Entry>& entry);

  Stats stats() const;

 private:
  void evict_locked();

  Options options_;

  mutable std::mutex mu_;
  /// MRU-first key order; completed_ values point into this list.
  std::list<std::string> lru_;
  struct Completed {
    std::string text;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Completed> completed_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> in_flight_;

  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> coalesced_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> spill_hits_{0};
  std::atomic<long long> spill_writes_{0};
};

}  // namespace klotski::serve
