// Content-addressed plan cache: sharded, single-flight, with a shared
// crash-safe disk spill.
//
// Keys are json::content_hash digests of the canonicalized request (see
// canonical.h): bit-stable across runs and processes, so a spill directory
// written by one daemon generation is a warm cache for the next. Values are
// the exact response bytes (the pretty-printed plan JSON text the CLI would
// have written), so a cache hit is byte-identical to a cold run by
// construction.
//
// Sharding: the key space is split across Options::shards independent
// shards, each with its own mutex, LRU list and in-flight table, so
// concurrent hits on different keys never contend on one lock — the
// fleet-front-door requirement. Single-flight semantics are unchanged
// (a key lives in exactly one shard, chosen by key hash), and shard count
// never changes the bytes served: with shards == 1 the cache degenerates to
// one global LRU, which is what the LRU-order tests pin. Capacity is split
// evenly across shards (at least one entry each), so eviction order is
// per-shard LRU, not global.
//
// Single-flight: when N identical requests arrive concurrently, exactly one
// caller becomes the *owner* (runs the planner); the rest become *waiters*
// and block on the owner's entry. All N observers receive the same bytes
// and the planner runs once — the serve test asserts this with the
// serve.plan_runs counter.
//
// Disk spill ("<dir>/<key>.json", format klotski-spill-v2): fulfilled
// entries are written through to disk and LRU-evicted keys remain servable
// from it (a spill hit re-enters the memory LRU). Writes are crash-safe:
// the bytes go to a same-directory temp file first and are renamed into
// place, and each file carries a one-line header with the payload length
// and util::StableDigest, verified on read — a torn, truncated or
// otherwise corrupt spill file is quarantined (removed) and reads as a
// miss, never served as a hit. Failures are never cached: the owner's
// error is delivered to the waiters of that flight only, and the next
// request recomputes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace klotski::serve {

class PlanCache {
 public:
  struct Options {
    std::size_t capacity = 128;  // completed entries held in memory, total
    std::string spill_dir;       // empty = no on-disk spill
    int shards = 8;              // independent lock domains (>= 1)
  };

  /// Shared state of one in-flight computation. Owners fulfill or fail it;
  /// waiters block on it. Lifetime is managed by shared_ptr so a waiter can
  /// outlive the cache's bookkeeping for the flight.
  class Entry {
   public:
    explicit Entry(std::string key) : key_(std::move(key)) {}
    const std::string& key() const { return key_; }

   private:
    friend class PlanCache;
    enum class State { kPending, kDone, kFailed };

    std::string key_;
    std::mutex mu_;
    std::condition_variable cv_;
    State state_ = State::kPending;
    std::string text_;
    std::string error_;
  };

  enum class Outcome {
    kHit,    // text is the cached bytes; no work to do
    kOwner,  // caller must compute, then fulfill() or fail() the entry
    kWait,   // another caller is computing; block in wait()
  };

  struct Lookup {
    Outcome outcome = Outcome::kHit;
    std::string text;               // valid when kHit
    std::shared_ptr<Entry> entry;   // valid when kOwner / kWait
  };

  /// Always-on counters (independent of the obs enable flag) backing the
  /// daemon's `stats` endpoint. Aggregated across shards.
  struct Stats {
    long long hits = 0;        // memory LRU hits
    long long misses = 0;      // owner flights started
    long long coalesced = 0;   // waiters attached to an in-flight entry
    long long evictions = 0;   // completed entries dropped from memory
    long long spill_hits = 0;  // served from the spill dir after eviction
    long long spill_writes = 0;
    long long spill_corrupt = 0;  // torn/invalid spill files quarantined
    std::size_t entries = 0;   // completed entries currently in memory
    std::size_t in_flight = 0;
    int shards = 1;
  };

  explicit PlanCache(const Options& options);

  /// Single-flight lookup; see Outcome.
  Lookup acquire(const std::string& key);

  /// Owner side: publishes `text` for the entry's key, wakes the waiters,
  /// inserts into the LRU (evicting beyond the shard's capacity share) and
  /// writes the spill file when configured.
  void fulfill(const std::shared_ptr<Entry>& entry, const std::string& text);

  /// Owner side: the computation failed. Waiters of this flight receive
  /// `error`; nothing is cached.
  void fail(const std::shared_ptr<Entry>& entry, const std::string& error);

  /// Waiter side: blocks until the owner fulfills or fails. Throws
  /// std::runtime_error carrying the owner's error on failure.
  std::string wait(const std::shared_ptr<Entry>& entry);

  Stats stats() const;

  /// The spill-file bytes for a payload (header line + payload) and its
  /// inverse. decode_spill returns false on any mismatch — bad magic,
  /// length, or digest — which the cache treats as a miss. Exposed for the
  /// torn-spill regression tests.
  static std::string encode_spill(const std::string& payload);
  static bool decode_spill(const std::string& file_bytes,
                           std::string& payload_out);

 private:
  struct Completed {
    std::string text;
    std::list<std::string>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    /// MRU-first key order; completed values point into this list.
    std::list<std::string> lru;
    std::unordered_map<std::string, Completed> completed;
    std::unordered_map<std::string, std::shared_ptr<Entry>> in_flight;
  };

  Shard& shard_for(const std::string& key);
  void evict_shard_locked(Shard& shard);
  bool read_spill(const std::string& key, std::string& text_out);
  void write_spill(const std::string& key, const std::string& text);

  Options options_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> spill_seq_{0};

  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> coalesced_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> spill_hits_{0};
  std::atomic<long long> spill_writes_{0};
  std::atomic<long long> spill_corrupt_{0};
};

}  // namespace klotski::serve
