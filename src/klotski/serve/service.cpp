#include "klotski/serve/service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "klotski/json/canonical.h"
#include "klotski/npd/npd_io.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/pipeline/replan.h"
#include "klotski/sim/chaos.h"
#include "klotski/traffic/demand_io.h"
#include "klotski/traffic/forecast.h"
#include "klotski/util/thread_budget.h"
#include "klotski/whatif/whatif.h"

namespace klotski::serve {

namespace {

/// Shared tuning knobs of plan/audit/replan requests, with the same
/// defaults as the klotski_plan flags.
struct PlanKnobs {
  std::string planner = "astar";
  double theta = 0.75;
  double alpha = 0.0;
  std::string routing = "ecmp";
  double funneling = 0.0;
  double deadline = 0.0;
};

PlanKnobs parse_knobs(const json::Value& params) {
  PlanKnobs knobs;
  knobs.planner = params.get_string("planner", "astar");
  knobs.theta = params.get_double("theta", 0.75);
  knobs.alpha = params.get_double("alpha", 0.0);
  knobs.routing = params.get_string("routing", "ecmp");
  knobs.funneling = params.get_double("funneling", 0.0);
  knobs.deadline = params.get_double("deadline", 0.0);
  if (knobs.routing != "ecmp" && knobs.routing != "wcmp") {
    throw std::invalid_argument("unknown routing '" + knobs.routing + "'");
  }
  return knobs;
}

pipeline::CheckerConfig checker_config_for(const PlanKnobs& knobs,
                                           int router_threads) {
  pipeline::CheckerConfig config;
  config.demand.max_utilization = knobs.theta;
  config.demand.funneling_margin = knobs.funneling;
  if (knobs.routing == "wcmp") {
    config.routing = traffic::SplitMode::kCapacityWeighted;
  }
  config.router_threads = router_threads;
  return config;
}

const json::Value& require_object(const json::Value& params,
                                  const std::string& key) {
  const json::Value* value = params.as_object().find(key);
  if (value == nullptr || !value->is_object()) {
    throw std::invalid_argument("params." + key +
                                " must be a JSON object");
  }
  return *value;
}

migration::MigrationCase case_from_params(const json::Value& params) {
  const npd::NpdDocument doc = npd::from_json(require_object(params, "npd"));
  migration::MigrationCase mig = npd::build_case(doc);
  if (const json::Value* demands = params.as_object().find("demands")) {
    mig.task.demands =
        traffic::demands_from_json(*mig.task.topo, *demands);
  }
  return mig;
}

/// Sampling knobs of the whatif method, same names and defaults as the
/// klotski_whatif flags (the remote mode forwards them verbatim). Thread
/// counts are deliberately absent: reports are thread-invariant, so the
/// daemon supplies its own budget and the cache key stays portable.
whatif::WhatIfParams whatif_params_from(const json::Value& params) {
  whatif::WhatIfParams out;
  out.trajectories = static_cast<int>(params.get_int("trajectories", 100));
  out.seed = static_cast<std::uint64_t>(params.get_int("seed", 0));
  out.growth_min = params.get_double("growth_min", 0.0);
  out.growth_max = params.get_double("growth_max", 0.004);
  out.surges = static_cast<int>(params.get_int("surges", 1));
  out.forecast_errors =
      static_cast<int>(params.get_int("forecast_errors", 1));
  out.surge_factor_min = params.get_double("surge_factor_min", 0.8);
  out.surge_factor_max = params.get_double("surge_factor_max", 1.5);
  out.bias_factor_min = params.get_double("bias_factor_min", 0.85);
  out.bias_factor_max = params.get_double("bias_factor_max", 1.2);
  out.margin_iterations =
      static_cast<int>(params.get_int("margin_iterations", 16));
  out.margin_max = params.get_double("margin_max", 4.0);
  const PlanKnobs knobs = parse_knobs(params);
  out.checker = checker_config_for(knobs, 1);
  return out;
}

topo::PresetId preset_from(const json::Value& params) {
  const std::string text = params.get_string("preset", "a");
  if (text == "a") return topo::PresetId::kA;
  if (text == "b") return topo::PresetId::kB;
  if (text == "c") return topo::PresetId::kC;
  if (text == "d") return topo::PresetId::kD;
  if (text == "e") return topo::PresetId::kE;
  throw std::invalid_argument("unknown preset '" + text + "' (want a..e)");
}

}  // namespace

json::Value plan_cache_key_doc(const json::Value& params) {
  const PlanKnobs knobs = parse_knobs(params);
  json::Object key;
  key["schema"] = "klotski.serve.plan-key.v1";
  // Re-serializing the parsed NPD applies defaults and drops formatting, so
  // two spellings of the same region hash identically.
  key["npd"] = npd::to_json(npd::from_json(require_object(params, "npd")));
  key["planner"] = knobs.planner;
  key["theta"] = knobs.theta;
  key["alpha"] = knobs.alpha;
  key["routing"] = knobs.routing;
  key["funneling"] = knobs.funneling;
  key["deadline"] = knobs.deadline;
  if (const json::Value* demands = params.as_object().find("demands")) {
    key["demands"] = *demands;
  }
  return json::Value(std::move(key));
}

json::Value whatif_cache_key_doc(const json::Value& params) {
  const whatif::WhatIfParams wp = whatif_params_from(params);
  const PlanKnobs knobs = parse_knobs(params);
  json::Object key;
  // The schema string participates in the content hash, so whatif keys can
  // never collide with plan keys inside the shared PlanCache.
  key["schema"] = "klotski.serve.whatif-key.v1";
  key["npd"] = npd::to_json(npd::from_json(require_object(params, "npd")));
  key["plan"] = require_object(params, "plan");
  key["theta"] = knobs.theta;
  key["routing"] = knobs.routing;
  key["funneling"] = knobs.funneling;
  key["trajectories"] = wp.trajectories;
  key["seed"] = static_cast<std::int64_t>(wp.seed);
  key["growth_min"] = wp.growth_min;
  key["growth_max"] = wp.growth_max;
  key["surges"] = wp.surges;
  key["forecast_errors"] = wp.forecast_errors;
  key["surge_factor_min"] = wp.surge_factor_min;
  key["surge_factor_max"] = wp.surge_factor_max;
  key["bias_factor_min"] = wp.bias_factor_min;
  key["bias_factor_max"] = wp.bias_factor_max;
  key["margin_iterations"] = wp.margin_iterations;
  key["margin_max"] = wp.margin_max;
  if (const json::Value* demands = params.as_object().find("demands")) {
    key["demands"] = *demands;
  }
  return json::Value(std::move(key));
}

PlanService::PlanService(const Options& options)
    : options_(options), cache_(options.cache) {}

Response PlanService::execute(const Request& request,
                              const std::atomic<bool>& stop) {
  try {
    if (request.method == "plan") return run_plan(request);
    if (request.method == "audit") return run_audit(request);
    if (request.method == "chaos") return run_chaos(request, stop);
    if (request.method == "replan") return run_replan(request, stop);
    if (request.method == "whatif") return run_whatif(request, stop);
    return Response::make_error(
        request.id, "unknown method '" + request.method + "'");
  } catch (const std::exception& e) {
    return Response::make_error(request.id, e.what());
  }
}

std::string PlanService::compute_plan_text(const json::Value& params) {
  const PlanKnobs knobs = parse_knobs(params);
  migration::MigrationCase mig = case_from_params(params);
  migration::MigrationTask& task = mig.task;

  const pipeline::CheckerConfig checker_config =
      checker_config_for(knobs, options_.router_threads);

  core::PlannerOptions planner_options;
  planner_options.alpha = knobs.alpha;
  planner_options.deadline_seconds = knobs.deadline;
  planner_options.num_threads = util::split_thread_budget(
                                    options_.plan_threads, 1)
                                    .outer;
  if (planner_options.num_threads > 1) {
    pipeline::CheckerConfig worker_config = checker_config;
    worker_config.router_threads =
        util::split_thread_budget(planner_options.num_threads,
                                  checker_config.router_threads)
            .inner;
    planner_options.checker_factory =
        pipeline::make_standard_checker_factory(worker_config);
  }

  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, checker_config);
  auto planner = pipeline::make_planner(knobs.planner);

  obs::Registry::global().counter("serve.plan_runs").inc();
  core::Plan plan;
  {
    obs::Span span("serve.plan_run");
    plan = planner->plan(task, *bundle.checker, planner_options);
  }
  if (!plan.found) {
    throw std::runtime_error("no plan: " + plan.failure);
  }

  // Same pre-emit audit as the CLI: nothing leaves the service without an
  // independent safety check (§7.2).
  pipeline::CheckerBundle audit_bundle =
      pipeline::make_standard_checker(task, checker_config);
  const pipeline::AuditReport audit =
      pipeline::audit_plan(task, *audit_bundle.checker, plan);
  if (!audit.ok) {
    std::string message = "plan failed the safety audit:";
    for (const std::string& issue : audit.issues) {
      message += " " + issue + ";";
    }
    throw std::runtime_error(message);
  }

  return json::dump(pipeline::plan_to_json(task, plan), 2) + "\n";
}

Response PlanService::run_plan(const Request& request) {
  const std::string key =
      json::content_hash(plan_cache_key_doc(request.params));

  PlanCache::Lookup lookup = cache_.acquire(key);
  std::string text;
  bool cached = true;
  switch (lookup.outcome) {
    case PlanCache::Outcome::kHit:
      text = lookup.text;
      break;
    case PlanCache::Outcome::kWait:
      text = cache_.wait(lookup.entry);
      break;
    case PlanCache::Outcome::kOwner:
      // Failures are delivered to this flight's waiters and never cached.
      try {
        text = compute_plan_text(request.params);
      } catch (const std::exception& e) {
        cache_.fail(lookup.entry, e.what());
        throw;
      } catch (...) {
        cache_.fail(lookup.entry, "unknown error");
        throw;
      }
      cache_.fulfill(lookup.entry, text);
      cached = false;
      break;
  }

  json::Object result;
  result["cache_key"] = key;
  // The exact bytes klotski_plan would write, as a parsed document: a
  // client re-dumping result.plan at indent 2 plus a trailing newline
  // recovers them byte-for-byte (dump∘parse∘dump is stable).
  result["plan"] = json::parse(text);
  return Response::make_ok(request.id, json::Value(std::move(result)),
                           cached);
}

Response PlanService::run_audit(const Request& request) {
  const json::Value& params = request.params;
  const PlanKnobs knobs = parse_knobs(params);
  migration::MigrationCase mig = case_from_params(params);
  migration::MigrationTask& task = mig.task;

  const core::Plan plan =
      pipeline::plan_from_json(task, require_object(params, "plan"));
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(
      task, checker_config_for(knobs, options_.router_threads));
  const pipeline::AuditReport audit = pipeline::audit_plan(
      task, *bundle.checker, plan,
      params.get_bool("check_every_action", false));

  json::Object result;
  result["ok"] = audit.ok;
  result["phases_checked"] = audit.phases_checked;
  json::Array issues;
  for (const std::string& issue : audit.issues) issues.push_back(issue);
  result["issues"] = std::move(issues);
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

namespace {

/// Median planning-round latency in milliseconds; 0 when no rounds ran.
double median_round_ms(std::vector<double> seconds) {
  if (seconds.empty()) return 0.0;
  const std::size_t mid = seconds.size() / 2;
  std::nth_element(seconds.begin(),
                   seconds.begin() + static_cast<std::ptrdiff_t>(mid),
                   seconds.end());
  return seconds[mid] * 1e3;
}

}  // namespace

Response PlanService::run_chaos(const Request& request,
                                const std::atomic<bool>& stop) {
  const json::Value& params = request.params;
  sim::ChaosParams chaos;
  chaos.family =
      topo::family_from_string(params.get_string("family", "clos"));
  chaos.preset = preset_from(params);
  if (params.get_string("scale", "reduced") == "full") {
    chaos.scale = topo::PresetScale::kFull;
  }
  chaos.planner = params.get_string("planner", "astar");
  chaos.checker.demand.max_utilization = params.get_double("theta", 0.75);
  chaos.growth_per_step = params.get_double("growth", 0.002);
  chaos.max_replans =
      static_cast<int>(params.get_int("max_replans", 0));
  chaos.max_phase_retries =
      static_cast<int>(params.get_int("retries", 6));
  chaos.checkpoint_self_test = params.get_bool("resume_check", true);
  chaos.warm_repair = !params.get_bool("no_warm_repair", false);
  chaos.repair_cost_slack = params.get_double("repair_cost_slack", 1.25);
  // Fault-script knobs, same names and defaults as klotski_chaos — the
  // remote mode (klotski_chaos --connect) forwards its flags verbatim.
  chaos.faults.circuit_degrades =
      static_cast<int>(params.get_int("degrades", 2));
  chaos.faults.circuit_failures =
      static_cast<int>(params.get_int("circuit_failures", 1));
  chaos.faults.switch_drains =
      static_cast<int>(params.get_int("drains", 1));
  chaos.faults.step_failures =
      static_cast<int>(params.get_int("step_failures", 2));
  chaos.faults.demand_events = static_cast<int>(params.get_int("surges", 1));
  chaos.faults.forecast_errors =
      static_cast<int>(params.get_int("forecast_errors", 1));

  const std::uint64_t first_seed =
      static_cast<std::uint64_t>(params.get_int("first_seed", 0));
  const int num_seeds = static_cast<int>(params.get_int("seeds", 5));
  if (num_seeds < 1) {
    throw std::invalid_argument("params.seeds must be >= 1");
  }

  // Seeds run serially inside the job (worker-pool concurrency comes from
  // running many jobs, not from one job fanning out) so the stop flag is
  // honored at seed granularity: a drain finishes the current seed and
  // reports a partial sweep.
  json::Array verdicts;
  int failures = 0;
  int seeds_run = 0;
  bool stopped = false;
  int warm_attempts = 0;
  int warm_wins = 0;
  int fallback_full = 0;
  std::vector<double> round_seconds;
  for (int i = 0; i < num_seeds; ++i) {
    if (stop.load(std::memory_order_relaxed)) {
      stopped = true;
      break;
    }
    const sim::ChaosVerdict v =
        sim::run_chaos_seed(first_seed + static_cast<std::uint64_t>(i),
                            chaos);
    ++seeds_run;
    if (!v.passed()) ++failures;
    warm_attempts += v.warm_attempts;
    warm_wins += v.warm_wins;
    fallback_full += v.fallback_full;
    for (const pipeline::ReplanRound& round : v.rounds) {
      round_seconds.push_back(round.seconds);
    }
    json::Object verdict;
    verdict["seed"] = static_cast<std::int64_t>(v.seed);
    verdict["passed"] = v.passed();
    verdict["phases"] = v.phases;
    verdict["replans"] = v.replans;
    verdict["retries"] = v.phase_retries;
    verdict["warm_wins"] = v.warm_wins;
    if (!v.passed()) verdict["failure"] = v.failure;
    verdicts.push_back(json::Value(std::move(verdict)));
  }

  json::Object result;
  result["seeds_run"] = seeds_run;
  result["failures"] = failures;
  if (stopped) result["stopped"] = true;
  result["warm_attempts"] = warm_attempts;
  result["warm_wins"] = warm_wins;
  result["fallback_full"] = fallback_full;
  result["median_replan_ms"] = median_round_ms(std::move(round_seconds));
  result["verdicts"] = std::move(verdicts);
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

Response PlanService::run_replan(const Request& request,
                                 const std::atomic<bool>& stop) {
  const json::Value& params = request.params;
  const PlanKnobs knobs = parse_knobs(params);
  migration::MigrationCase mig = case_from_params(params);
  migration::MigrationTask& task = mig.task;

  traffic::Forecaster forecaster(task.demands,
                                 params.get_double("growth", 0.002));

  pipeline::ReplanOptions options;
  options.checker = checker_config_for(knobs, options_.router_threads);
  options.planner_options.alpha = knobs.alpha;
  options.planner_options.deadline_seconds = knobs.deadline;
  options.demand_change_threshold =
      params.get_double("demand_change_threshold", 0.10);
  options.max_phase_retries =
      static_cast<int>(params.get_int("max_phase_retries", 3));
  options.max_replans = static_cast<int>(params.get_int("max_replans", 0));
  options.fallback_planner = params.get_string("fallback", "mrc");
  options.warm_repair = !params.get_bool("no_warm_repair", false);
  options.repair_cost_slack =
      params.get_double("repair_cost_slack", 1.25);
  if (const json::Value* failing = params.as_object().find("failing_phases")) {
    for (const json::Value& phase : failing->as_array()) {
      options.failing_phases.push_back(static_cast<int>(phase.as_int()));
    }
  }

  pipeline::ReplanCheckpoint resume;
  if (const json::Value* checkpoint = params.as_object().find("checkpoint")) {
    resume = pipeline::ReplanCheckpoint::from_json(*checkpoint);
    options.resume = &resume;
  }

  // Graceful drain: checkpoint after the current phase and return the
  // checkpoint as the resume token instead of abandoning the run.
  pipeline::ReplanCheckpoint last_checkpoint;
  bool have_checkpoint = false;
  options.checkpoint_sink = [&](const pipeline::ReplanCheckpoint& cp) {
    last_checkpoint = cp;
    have_checkpoint = true;
  };
  options.stop_requested = [&stop] {
    return stop.load(std::memory_order_relaxed);
  };

  auto planner = pipeline::make_planner(knobs.planner);
  const pipeline::ReplanResult replan = pipeline::execute_with_replanning(
      task, *planner, forecaster, options);

  json::Object result;
  result["completed"] = replan.completed;
  result["stopped"] = replan.stopped;
  if (!replan.failure.empty()) result["failure"] = replan.failure;
  result["phases_executed"] = replan.phases_executed;
  result["replans"] = replan.replans;
  result["phase_retries"] = replan.phase_retries;
  result["fallback_plans"] = replan.fallback_plans;
  result["used_fallback"] = replan.used_fallback;
  result["executed_cost"] = replan.executed_cost;
  result["warm_attempts"] = replan.warm_attempts;
  result["warm_wins"] = replan.warm_wins;
  result["fallback_full"] = replan.fallback_full;
  {
    std::vector<double> round_seconds;
    round_seconds.reserve(replan.rounds.size());
    for (const pipeline::ReplanRound& round : replan.rounds) {
      round_seconds.push_back(round.seconds);
    }
    result["median_replan_ms"] = median_round_ms(std::move(round_seconds));
  }
  if (replan.stopped && have_checkpoint) {
    result["checkpoint"] = last_checkpoint.to_json();
  }
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

std::string PlanService::compute_whatif_text(const json::Value& params,
                                             const std::atomic<bool>& stop,
                                             bool& stopped) {
  whatif::WhatIfParams wparams = whatif_params_from(params);
  wparams.threads = util::split_thread_budget(options_.plan_threads, 1).outer;
  wparams.checker.router_threads = options_.router_threads;

  // Each sweep worker gets its own private case (trajectories mutate
  // topology state), rebuilt from the request params.
  const whatif::CaseFactory factory = [&params] {
    return case_from_params(params);
  };
  migration::MigrationCase reference = case_from_params(params);
  const core::Plan plan = pipeline::plan_from_json(
      reference.task, require_object(params, "plan"));

  obs::Registry::global().counter("serve.whatif_runs").inc();
  whatif::WhatIfReport report;
  {
    obs::Span span("serve.whatif_run");
    report = whatif::run_whatif(factory, plan, wparams, &stop);
  }
  stopped = report.stopped;
  return whatif::report_text(report, wparams);
}

Response PlanService::run_whatif(const Request& request,
                                 const std::atomic<bool>& stop) {
  const std::string key =
      json::content_hash(whatif_cache_key_doc(request.params));

  PlanCache::Lookup lookup = cache_.acquire(key);
  std::string text;
  bool cached = true;
  switch (lookup.outcome) {
    case PlanCache::Outcome::kHit:
      text = lookup.text;
      break;
    case PlanCache::Outcome::kWait:
      text = cache_.wait(lookup.entry);
      break;
    case PlanCache::Outcome::kOwner: {
      // Failures are delivered to this flight's waiters and never cached —
      // and neither is a stopped (partial) report, which would otherwise
      // satisfy later full-sweep requests with a truncated result.
      bool stopped = false;
      try {
        text = compute_whatif_text(request.params, stop, stopped);
      } catch (const std::exception& e) {
        cache_.fail(lookup.entry, e.what());
        throw;
      } catch (...) {
        cache_.fail(lookup.entry, "unknown error");
        throw;
      }
      if (stopped) {
        cache_.fail(lookup.entry,
                    "whatif sweep stopped before completion");
      } else {
        cache_.fulfill(lookup.entry, text);
      }
      cached = false;
      break;
    }
  }

  json::Object result;
  result["cache_key"] = key;
  // The exact bytes klotski_whatif would write, as a parsed document: a
  // client re-dumping result.report at indent 2 plus a trailing newline
  // recovers them byte-for-byte (dump∘parse∘dump is stable).
  result["report"] = json::parse(text);
  return Response::make_ok(request.id, json::Value(std::move(result)),
                           cached);
}

}  // namespace klotski::serve
