// Client library for the klotski.serve.v1 protocol, over both transports
// (AF_UNIX and TCP — see endpoint.h for the spec grammar). One connection,
// strict request/response per call; the daemon additionally answers
// pipelined lines in order, but this client never leaves a response
// unread, so call() can be used back to back without resyncing.
//
// Used by klotski_loadgen, klotski_servectl, klotski_chaos --connect, the
// serve smoke/bench gates and the tests; also the reference implementation
// for external callers — tools never hand-roll the wire protocol.
//
// Layers:
//   Client(endpoint)            one blocking connection
//   Client::connect_with_retry  dial with exponential backoff (daemons
//                               that are still booting, fleet restarts)
//   call(...)                   one request, one response
//   submit_and_wait(...)        async job helper: submit, then re-issue
//                               bounded waits until the job is terminal,
//                               and unwrap the job's inner response
#pragma once

#include <string>

#include "klotski/serve/endpoint.h"
#include "klotski/serve/protocol.h"

namespace klotski::serve {

class Client {
 public:
  /// Connects to a daemon; throws std::runtime_error when it is not there.
  explicit Client(const Endpoint& endpoint);
  /// Convenience: parses `spec` (unix:PATH | tcp:HOST:PORT | /path |
  /// HOST:PORT) and connects.
  explicit Client(const std::string& spec);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Dials with exponential backoff: `attempts` tries, sleeping
  /// `backoff_ms` after the first failure and doubling each retry. Throws
  /// the last connect error when every attempt fails.
  static Client connect_with_retry(const Endpoint& endpoint,
                                   int attempts = 5,
                                   long long backoff_ms = 50);

  /// Sends one request and blocks for its response. Throws
  /// std::runtime_error when the connection drops mid-call (e.g. the
  /// daemon was killed ungracefully).
  Response call(const Request& request);

  /// Convenience: call with just a method and params.
  Response call(const std::string& method, json::Value params,
                const std::string& id = "");

  /// Submits `method` as an async job and blocks until it is terminal,
  /// re-issuing bounded `wait` requests (the daemon caps a single wait so
  /// one client cannot pin a connection thread). Returns the job's inner
  /// response with `id` applied. Admission rejections ("overloaded" /
  /// "draining") and a cancelled job come back as-is for the caller's
  /// retry policy.
  Response submit_and_wait(const std::string& method, json::Value params,
                           const std::string& id = "",
                           long long wait_slice_ms = 30'000);

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response line
};

}  // namespace klotski::serve
