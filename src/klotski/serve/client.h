// Blocking client for the klotski.serve.v1 protocol: one connection, one
// request in flight (the protocol is strict request/response lockstep).
// Used by klotski_loadgen, the serve smoke gate, and the tests; also a
// reference implementation for external callers.
#pragma once

#include <string>

#include "klotski/serve/protocol.h"

namespace klotski::serve {

class Client {
 public:
  /// Connects to the daemon's unix socket; throws std::runtime_error when
  /// the daemon is not there.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Sends one request and blocks for its response. Throws
  /// std::runtime_error when the connection drops mid-call (e.g. the
  /// daemon was killed ungracefully).
  Response call(const Request& request);

  /// Convenience: call with just a method and params.
  Response call(const std::string& method, json::Value params,
                const std::string& id = "");

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response line
};

}  // namespace klotski::serve
