// Bounded worker pool + async job table with admission control.
//
// Every work request — synchronous or submitted — becomes a job on one FIFO
// queue drained by a fixed worker pool, so planner concurrency is bounded
// by --workers no matter how many connections are open. Admission control
// is explicit backpressure: when the queue already holds max_queue jobs,
// submit() refuses with kOverloaded and the server answers
// {"status":"overloaded"} immediately instead of queueing silently — the
// client owns the retry policy, the daemon owns its memory.
//
// Jobs expose a cooperative stop flag. cancel() removes a queued job
// outright and sets the flag on a running one; drain() (graceful SIGTERM)
// stops admission, flags every job, and waits until the queue and workers
// are idle. Work that honors the flag (replan via
// ReplanOptions::stop_requested, chaos between seeds) checkpoints and
// returns early; work that doesn't (a single planner run) simply finishes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "klotski/serve/protocol.h"

namespace klotski::serve {

class JobManager {
 public:
  struct Options {
    int workers = 2;
    int max_queue = 64;
    /// Finished async jobs kept for poll() after completion; the oldest
    /// finished jobs beyond this are forgotten.
    std::size_t completed_jobs_kept = 256;
  };

  enum class State { kQueued, kRunning, kDone, kError, kCancelled };
  static const char* state_name(State state);

  /// The work body. `stop` is the job's cooperative stop flag; long-running
  /// work should poll it. Exceptions become status:"error" responses.
  using Work = std::function<Response(const std::atomic<bool>& stop)>;

  struct JobView {
    std::string id;
    std::string method;
    State state = State::kQueued;
    Response result;  // meaningful once state is kDone/kError/kCancelled
  };

  struct Submitted {
    std::string job_id;   // empty on rejection
    std::string rejected; // "" | "overloaded" | "draining"
    bool ok() const { return rejected.empty(); }
  };

  explicit JobManager(const Options& options);
  ~JobManager();

  /// Admission-controlled enqueue.
  Submitted submit(const std::string& method, Work work);

  /// Snapshot of one job; nullopt for unknown (or long-forgotten) ids.
  std::optional<JobView> poll(const std::string& job_id) const;

  /// Blocks until the job finishes (or `timeout_ms` elapses; 0 = forever).
  /// Returns nullopt on unknown id or timeout.
  std::optional<JobView> wait(const std::string& job_id,
                              long long timeout_ms = 0);

  /// Queued jobs are cancelled outright; running jobs get their stop flag
  /// set (state stays kRunning until the work returns). Returns the state
  /// observed at cancel time, nullopt for unknown ids.
  std::optional<State> cancel(const std::string& job_id);

  /// Drops a finished job's record (sync requests clean up after harvest).
  void forget(const std::string& job_id);

  /// Graceful drain: stop admission, set every job's stop flag, wait until
  /// all admitted work has finished. Idempotent.
  void drain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  std::size_t queue_depth() const;
  int workers() const { return static_cast<int>(workers_.size()); }

  struct Stats {
    long long submitted = 0;
    long long rejected_overloaded = 0;
    long long completed = 0;
    std::size_t queued = 0;
    std::size_t running = 0;
  };
  Stats stats() const;

 private:
  struct Job {
    std::string id;
    std::string method;
    State state = State::kQueued;
    std::atomic<bool> stop{false};
    Work work;
    Response result;
  };

  void worker_loop();
  JobView view_locked(const Job& job) const;
  void prune_finished_locked();

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;     // workers: work available / exit
  std::condition_variable finished_cv_;  // waiters: some job finished
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::string> finished_order_;  // for completed_jobs_kept pruning
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  bool shutdown_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> rejected_overloaded_{0};
  std::atomic<long long> completed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace klotski::serve
