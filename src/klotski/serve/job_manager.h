// Bounded worker pool + async job table with priority-aware admission.
//
// Every work request — synchronous or submitted — becomes a job in one of
// two admission classes drained by a fixed worker pool, so planner
// concurrency is bounded by --workers no matter how many connections are
// open. Interactive methods (plan, audit — an operator is waiting on the
// answer) queue ahead of batch methods (whatif, chaos, replan — long
// sweeps a scheduler submitted), so a robustness sweep that takes minutes
// cannot wedge a one-second plan request behind it. Strict priority would
// let a steady interactive stream starve batch work forever, so dispatch
// carries a starvation bound: after `starvation_bound` consecutive
// interactive dispatches while batch work waits, the next free worker
// takes the oldest batch job regardless. Queued batch jobs report how many
// jobs are ordered ahead of them (JobView::queued_behind) so a caller can
// tell "slow because big" from "slow because parked".
//
// Admission control is explicit backpressure: when the two queues together
// already hold max_queue jobs, submit() refuses with kOverloaded and the
// server answers {"status":"overloaded"} immediately instead of queueing
// silently — the client owns the retry policy, the daemon owns its memory.
//
// Jobs expose a cooperative stop flag. cancel() removes a queued job
// outright and sets the flag on a running one; drain() (graceful SIGTERM)
// stops admission, flags every job, and waits until the queues and workers
// are idle. Work that honors the flag (replan via
// ReplanOptions::stop_requested, chaos between seeds, whatif between
// trajectories) checkpoints and returns early; work that doesn't (a single
// planner run) simply finishes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "klotski/serve/protocol.h"

namespace klotski::serve {

class JobManager {
 public:
  struct Options {
    int workers = 2;
    int max_queue = 64;
    /// Finished async jobs kept for poll() after completion; the oldest
    /// finished jobs beyond this are forgotten.
    std::size_t completed_jobs_kept = 256;
    /// Starvation bound of the two-class dispatch: the most consecutive
    /// interactive dispatches allowed while a batch job waits. With the
    /// default, at least every 5th dispatch under sustained interactive
    /// load is a batch job.
    int starvation_bound = 4;
  };

  enum class State { kQueued, kRunning, kDone, kError, kCancelled };
  static const char* state_name(State state);

  /// Admission class of a work method. Interactive requests (someone is
  /// blocked on the answer) dispatch ahead of batch sweeps; unknown
  /// methods count as interactive so their error response comes back fast.
  enum class Priority { kInteractive, kBatch };
  static Priority priority_for(const std::string& method);
  static const char* priority_name(Priority priority);

  /// The work body. `stop` is the job's cooperative stop flag; long-running
  /// work should poll it. Exceptions become status:"error" responses.
  using Work = std::function<Response(const std::atomic<bool>& stop)>;

  struct JobView {
    std::string id;
    std::string method;
    Priority priority = Priority::kInteractive;
    State state = State::kQueued;
    /// While queued: jobs currently ordered ahead of this one (for a batch
    /// job that counts every queued interactive job, which dispatch
    /// prefers). A progress indicator, not a promise — the starvation
    /// bound and new arrivals reorder dispatch. 0 once running/finished.
    std::size_t queued_behind = 0;
    Response result;  // meaningful once state is kDone/kError/kCancelled
  };

  struct Submitted {
    std::string job_id;   // empty on rejection
    std::string rejected; // "" | "overloaded" | "draining"
    bool ok() const { return rejected.empty(); }
  };

  explicit JobManager(const Options& options);
  ~JobManager();

  /// Admission-controlled enqueue.
  Submitted submit(const std::string& method, Work work);

  /// Snapshot of one job; nullopt for unknown (or long-forgotten) ids.
  std::optional<JobView> poll(const std::string& job_id) const;

  /// Blocks until the job finishes (or `timeout_ms` elapses; 0 = forever).
  /// Returns nullopt on unknown id or timeout.
  std::optional<JobView> wait(const std::string& job_id,
                              long long timeout_ms = 0);

  /// Queued jobs are cancelled outright; running jobs get their stop flag
  /// set (state stays kRunning until the work returns). Returns the state
  /// observed at cancel time, nullopt for unknown ids.
  std::optional<State> cancel(const std::string& job_id);

  /// Drops a finished job's record (sync requests clean up after harvest).
  void forget(const std::string& job_id);

  /// Graceful drain: stop admission, set every job's stop flag, wait until
  /// all admitted work has finished. Idempotent.
  void drain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  std::size_t queue_depth() const;
  int workers() const { return static_cast<int>(workers_.size()); }

  struct Stats {
    long long submitted = 0;
    long long rejected_overloaded = 0;
    long long completed = 0;
    /// Batch dispatches forced by the starvation bound.
    long long starvation_promotions = 0;
    std::size_t queued = 0;  // queued_interactive + queued_batch
    std::size_t queued_interactive = 0;
    std::size_t queued_batch = 0;
    std::size_t running = 0;
  };
  Stats stats() const;

 private:
  struct Job {
    std::string id;
    std::string method;
    Priority priority = Priority::kInteractive;
    State state = State::kQueued;
    std::atomic<bool> stop{false};
    Work work;
    Response result;
  };

  void worker_loop();
  std::shared_ptr<Job> pop_locked();
  JobView view_locked(const Job& job) const;
  std::size_t queued_behind_locked(const Job& job) const;
  void prune_finished_locked();

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;     // workers: work available / exit
  std::condition_variable finished_cv_;  // waiters: some job finished
  std::deque<std::shared_ptr<Job>> interactive_;
  std::deque<std::shared_ptr<Job>> batch_;
  std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::string> finished_order_;  // for completed_jobs_kept pruning
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  /// Consecutive interactive dispatches while batch work waited; reset by
  /// every batch dispatch.
  int interactive_streak_ = 0;
  long long starvation_promotions_ = 0;
  bool shutdown_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> rejected_overloaded_{0};
  std::atomic<long long> completed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace klotski::serve
