#include "klotski/serve/protocol.h"

#include <stdexcept>
#include <utility>

namespace klotski::serve {

json::Value Request::to_json() const {
  json::Object root;
  if (!id.empty()) root["id"] = id;
  root["method"] = method;
  root["params"] = params;
  return json::Value(std::move(root));
}

Request parse_request(const std::string& line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object()) {
    throw std::invalid_argument("request is not a JSON object");
  }
  Request req;
  req.id = doc.get_string("id", "");
  req.method = doc.get_string("method", "");
  if (req.method.empty()) {
    throw std::invalid_argument("request carries no \"method\"");
  }
  if (const json::Value* params = doc.as_object().find("params")) {
    if (!params->is_object()) {
      throw std::invalid_argument("request \"params\" is not an object");
    }
    req.params = *params;
  } else {
    req.params = json::Value(json::Object{});
  }
  return req;
}

json::Value Response::to_json() const {
  json::Object root;
  if (!id.empty()) root["id"] = id;
  root["status"] = status;
  if (cached) root["cached"] = true;
  if (!error.empty()) root["error"] = error;
  if (!result.is_null()) root["result"] = result;
  return json::Value(std::move(root));
}

std::string Response::to_line() const { return json::dump(to_json()) + "\n"; }

Response Response::parse(const std::string& line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object()) {
    throw std::invalid_argument("response is not a JSON object");
  }
  Response resp;
  resp.id = doc.get_string("id", "");
  resp.status = doc.get_string("status", "");
  if (resp.status.empty()) {
    throw std::invalid_argument("response carries no \"status\"");
  }
  resp.cached = doc.get_bool("cached", false);
  resp.error = doc.get_string("error", "");
  if (const json::Value* result = doc.as_object().find("result")) {
    resp.result = *result;
  }
  return resp;
}

Response Response::make_ok(const std::string& id, json::Value result,
                           bool cached) {
  Response resp;
  resp.id = id;
  resp.status = "ok";
  resp.cached = cached;
  resp.result = std::move(result);
  return resp;
}

Response Response::make_error(const std::string& id,
                              const std::string& error) {
  Response resp;
  resp.id = id;
  resp.status = "error";
  resp.error = error;
  return resp;
}

Response Response::make_status(const std::string& id,
                               const std::string& status) {
  Response resp;
  resp.id = id;
  resp.status = status;
  return resp;
}

}  // namespace klotski::serve
