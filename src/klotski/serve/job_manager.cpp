#include "klotski/serve/job_manager.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "klotski/obs/metrics.h"
#include "klotski/util/thread_budget.h"

namespace klotski::serve {

const char* JobManager::state_name(State state) {
  switch (state) {
    case State::kQueued: return "queued";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kError: return "error";
    case State::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobManager::Priority JobManager::priority_for(const std::string& method) {
  if (method == "whatif" || method == "chaos" || method == "replan") {
    return Priority::kBatch;
  }
  return Priority::kInteractive;
}

const char* JobManager::priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

JobManager::JobManager(const Options& options) : options_(options) {
  const int workers = util::split_thread_budget(options_.workers, 1).outer;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Abandoned queued jobs: the process is going away; flag them so any
    // waiter unblocks with a terminal state.
    for (std::deque<std::shared_ptr<Job>>* queue : {&interactive_, &batch_}) {
      for (const std::shared_ptr<Job>& job : *queue) {
        job->state = State::kCancelled;
        job->result = Response::make_error(std::string(), "server shut down");
      }
      queue->clear();
    }
  }
  queue_cv_.notify_all();
  finished_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

JobManager::Submitted JobManager::submit(const std::string& method,
                                         Work work) {
  Submitted out;
  if (draining_.load(std::memory_order_relaxed)) {
    out.rejected = "draining";
    return out;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      out.rejected = "draining";
      return out;
    }
    // One bound over both classes: admission answers "does the daemon have
    // room", not "is this class busy" — a full queue of batch sweeps must
    // still refuse interactive work explicitly rather than queue silently.
    const std::size_t depth = interactive_.size() + batch_.size();
    if (depth >= static_cast<std::size_t>(std::max(0, options_.max_queue))) {
      rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("serve.rejected_overloaded").inc();
      out.rejected = "overloaded";
      return out;
    }
    auto job = std::make_shared<Job>();
    job->id = "j-" + std::to_string(next_id_++);
    job->method = method;
    job->priority = priority_for(method);
    job->work = std::move(work);
    jobs_[job->id] = job;
    (job->priority == Priority::kBatch ? batch_ : interactive_)
        .push_back(job);
    obs::Registry::global()
        .gauge("serve.queue_depth_max")
        .set_max(static_cast<double>(depth + 1));
    out.job_id = job->id;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("serve.jobs_submitted").inc();
  queue_cv_.notify_one();
  return out;
}

std::optional<JobManager::JobView> JobManager::poll(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return view_locked(*it->second);
}

std::optional<JobManager::JobView> JobManager::wait(const std::string& job_id,
                                                    long long timeout_ms) {
  const auto finished = [](const Job& job) {
    return job.state == State::kDone || job.state == State::kError ||
           job.state == State::kCancelled;
  };
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  const auto done = [&] { return finished(*job); };
  if (timeout_ms > 0) {
    if (!finished_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               done)) {
      return std::nullopt;
    }
  } else {
    finished_cv_.wait(lock, done);
  }
  return view_locked(*job);
}

std::optional<JobManager::State> JobManager::cancel(
    const std::string& job_id) {
  std::shared_ptr<Job> job;
  State observed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
    observed = job->state;
    job->stop.store(true, std::memory_order_relaxed);
    if (job->state == State::kQueued) {
      std::deque<std::shared_ptr<Job>>& queue =
          job->priority == Priority::kBatch ? batch_ : interactive_;
      queue.erase(std::remove(queue.begin(), queue.end(), job), queue.end());
      job->state = State::kCancelled;
      job->result = Response::make_error(std::string(), "cancelled");
      finished_order_.push_back(job->id);
      prune_finished_locked();
      obs::Registry::global().counter("serve.jobs_cancelled").inc();
    }
  }
  finished_cv_.notify_all();
  return observed;
}

void JobManager::forget(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  const State state = it->second->state;
  if (state == State::kDone || state == State::kError ||
      state == State::kCancelled) {
    jobs_.erase(it);
  }
}

void JobManager::drain() {
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, job] : jobs_) {
      job->stop.store(true, std::memory_order_relaxed);
    }
  }
  // Admitted work runs to completion (or to its stop-flag checkpoint).
  std::unique_lock<std::mutex> lock(mu_);
  finished_cv_.wait(lock, [&] {
    return interactive_.empty() && batch_.empty() && running_ == 0;
  });
}

std::size_t JobManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interactive_.size() + batch_.size();
}

JobManager::Stats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected_overloaded =
      rejected_overloaded_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.starvation_promotions = starvation_promotions_;
  stats.queued_interactive = interactive_.size();
  stats.queued_batch = batch_.size();
  stats.queued = stats.queued_interactive + stats.queued_batch;
  stats.running = running_;
  return stats;
}

std::shared_ptr<JobManager::Job> JobManager::pop_locked() {
  // Interactive first, except when the starvation bound trips: a steady
  // interactive stream may take at most `starvation_bound` consecutive
  // dispatches while a batch job waits, then the oldest batch job runs.
  const bool batch_waiting = !batch_.empty();
  const bool prefer_interactive =
      !interactive_.empty() &&
      (!batch_waiting || interactive_streak_ < options_.starvation_bound);
  std::shared_ptr<Job> job;
  if (prefer_interactive) {
    job = interactive_.front();
    interactive_.pop_front();
    interactive_streak_ = batch_waiting ? interactive_streak_ + 1 : 0;
  } else {
    job = batch_.front();
    batch_.pop_front();
    if (!interactive_.empty()) {
      // The bound, not an empty interactive queue, forced this dispatch.
      ++starvation_promotions_;
      obs::Registry::global()
          .counter("serve.starvation_promotions")
          .inc();
    }
    interactive_streak_ = 0;
  }
  return job;
}

void JobManager::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        return shutdown_ || !interactive_.empty() || !batch_.empty();
      });
      if (interactive_.empty() && batch_.empty()) {
        return;  // shutdown with drained queues
      }
      job = pop_locked();
      job->state = State::kRunning;
      ++running_;
    }

    Response result;
    try {
      result = job->work(job->stop);
    } catch (const std::exception& e) {
      result = Response::make_error(std::string(), e.what());
    } catch (...) {
      result = Response::make_error(std::string(), "unknown error");
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      job->result = std::move(result);
      job->state =
          job->result.status == "error" ? State::kError : State::kDone;
      --running_;
      finished_order_.push_back(job->id);
      prune_finished_locked();
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("serve.jobs_completed").inc();
    finished_cv_.notify_all();
  }
}

std::size_t JobManager::queued_behind_locked(const Job& job) const {
  const auto position = [&](const std::deque<std::shared_ptr<Job>>& queue) {
    std::size_t ahead = 0;
    for (const std::shared_ptr<Job>& queued : queue) {
      if (queued.get() == &job) break;
      ++ahead;
    }
    return ahead;
  };
  if (job.priority == Priority::kInteractive) return position(interactive_);
  // Dispatch prefers interactive work, so every queued interactive job is
  // ordered ahead of a queued batch job (modulo the starvation bound).
  return interactive_.size() + position(batch_);
}

JobManager::JobView JobManager::view_locked(const Job& job) const {
  JobView view;
  view.id = job.id;
  view.method = job.method;
  view.priority = job.priority;
  view.state = job.state;
  if (job.state == State::kQueued) {
    view.queued_behind = queued_behind_locked(job);
  }
  view.result = job.result;
  return view;
}

void JobManager::prune_finished_locked() {
  while (finished_order_.size() > options_.completed_jobs_kept) {
    // The oldest finished job may already have been forgotten by its sync
    // caller; erase() on a missing id is a no-op.
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

}  // namespace klotski::serve
