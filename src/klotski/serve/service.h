// PlanService: the work methods of the serve protocol (plan / audit /
// chaos / replan / whatif), independent of any transport.
//
// The plan method is content-addressed: the request is normalized (NPD
// parsed and re-serialized so formatting and defaulted fields cannot change
// the identity, tuning knobs defaulted, thread counts excluded — plans are
// bit-identical at any thread count), hashed with json::content_hash, and
// looked up in the PlanCache with single-flight semantics. The cached value
// is the exact pretty-printed plan text klotski_plan would have written, so
// a cache hit — or a waiter coalesced onto another request's flight — is
// byte-identical to a cold run. The serve.plan_runs counter increments only
// when the planner actually executes, which is what the single-flight test
// asserts.
//
// whatif rides the same machinery in a distinct key namespace (the key
// document's schema field participates in the content hash, so a whatif key
// can never collide with a plan key): the cached value is the exact
// klotski.whatif.v1 report text klotski_whatif would write — reports are
// bit-identical at any thread count — and serve.whatif_runs increments only
// when a sweep actually executes.
//
// chaos and replan are long-running and honor the job's cooperative stop
// flag: chaos finishes the current seed and reports a partial sweep; replan
// checkpoints after the current phase (ReplanOptions::stop_requested) and
// returns the checkpoint as a resume token. whatif polls the flag between
// trajectories, but a stopped (partial) report is never cached.
#pragma once

#include <atomic>

#include "klotski/serve/plan_cache.h"
#include "klotski/serve/protocol.h"

namespace klotski::serve {

class PlanService {
 public:
  struct Options {
    PlanCache::Options cache;
    /// Planner threading for plan requests. Output is invariant to both
    /// (the tier-1 determinism contract), so neither participates in the
    /// cache key; the daemon sets them from its share of the machine via
    /// util::split_thread_budget.
    int plan_threads = 1;
    int router_threads = 1;
  };

  explicit PlanService(const Options& options);

  /// Executes one work request (method plan | audit | chaos | replan |
  /// whatif). Never throws: malformed params and planner failures become
  /// status:"error" responses. `stop` is the owning job's cooperative stop
  /// flag.
  Response execute(const Request& request, const std::atomic<bool>& stop);

  PlanCache& cache() { return cache_; }
  const Options& options() const { return options_; }

 private:
  Response run_plan(const Request& request);
  Response run_audit(const Request& request);
  Response run_chaos(const Request& request, const std::atomic<bool>& stop);
  Response run_replan(const Request& request, const std::atomic<bool>& stop);
  Response run_whatif(const Request& request, const std::atomic<bool>& stop);

  /// The exact klotski.whatif.v1 report text klotski_whatif would write.
  /// Sets `stopped` when the sweep quit early on the stop flag (partial
  /// reports must not be cached). Throws on malformed params.
  std::string compute_whatif_text(const json::Value& params,
                                  const std::atomic<bool>& stop,
                                  bool& stopped);

  /// The exact plan text klotski_plan would write for these params, running
  /// the planner + pre-emit audit. Throws std::runtime_error on no-plan or
  /// audit failure.
  std::string compute_plan_text(const json::Value& params);

  Options options_;
  PlanCache cache_;
};

/// The plan request's cache identity: normalized params document whose
/// content_hash keys the PlanCache. Exposed for tests (key stability is an
/// on-disk format: spill files from one daemon generation must stay valid
/// for the next).
json::Value plan_cache_key_doc(const json::Value& params);

/// The whatif request's cache identity ("klotski.serve.whatif-key.v1"):
/// normalized NPD + plan + every sampling knob, thread counts excluded
/// (reports are thread-invariant). Same PlanCache, disjoint namespace.
json::Value whatif_cache_key_doc(const json::Value& params);

}  // namespace klotski::serve
