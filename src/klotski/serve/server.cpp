#include "klotski/serve/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "klotski/obs/metrics.h"

namespace klotski::serve {

namespace {

/// Poll tick of the accept loop: finished connection threads are reaped at
/// this cadence even when no new client ever connects.
constexpr int kReapIntervalMs = 250;

/// Poll tick of a sync work request's wait loop: how quickly a vanished
/// peer is noticed and its job cancelled.
constexpr long long kSyncWaitTickMs = 50;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying on EINTR / short writes. Returns
/// false when the peer went away.
bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool is_work_method(const std::string& method) {
  return method == "plan" || method == "audit" || method == "chaos" ||
         method == "replan" || method == "whatif";
}

/// True when the peer is fully gone (close()/RST — POLLERR or POLLHUP), as
/// opposed to a half-close (shutdown(SHUT_WR)), which only reads as EOF and
/// still expects its responses. Reliable for AF_UNIX; for TCP a plain FIN
/// is indistinguishable from a half-close until a write elicits an RST.
bool peer_vanished(int fd) {
  pollfd probe{fd, 0, 0};
  if (::poll(&probe, 1, 0) < 0) return false;
  return (probe.revents & (POLLERR | POLLHUP)) != 0;
}

int listen_tcp(const std::string& spec, std::string& host_out,
               std::uint16_t& port_out) {
  const Endpoint endpoint = Endpoint::parse(
      spec.find(':') == std::string::npos ? spec : "tcp:" + spec);
  if (!endpoint.is_tcp()) {
    throw std::runtime_error("serve: --listen wants HOST:PORT, got '" +
                             spec + "'");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* found = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(),
                               &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("serve: resolve " + spec + ": " +
                             ::gai_strerror(rc));
  }
  int fd = -1;
  int last_errno = EADDRNOTAVAIL;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw std::runtime_error("serve: bind " + spec + ": " +
                             std::strerror(last_errno));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: listen " + spec + ": " +
                             std::strerror(err));
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      port_out = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port_out = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  host_out = endpoint.host;
  return fd;
}

}  // namespace

Server::Server(const Options& options)
    : options_(options),
      service_(options.service),
      jobs_(options.jobs) {
  if (options_.socket_path.empty() && options_.listen.empty()) {
    throw std::runtime_error(
        "serve: a unix socket_path or a tcp listen spec is required");
  }
  if (::pipe(drain_pipe_) != 0) throw_errno("serve: pipe");

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("serve: socket");
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("serve: bind " + options_.socket_path);
    }
    if (::listen(listen_fd_, 64) != 0) throw_errno("serve: listen");
  }
  if (!options_.listen.empty()) {
    tcp_listen_fd_ = listen_tcp(options_.listen, tcp_host_, tcp_port_);
  }
}

Server::~Server() {
  // run() normally performs the full drain; this is the abnormal path
  // (constructor succeeded, run() never called / threw).
  request_drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns_.clear();
  }
  ::close(drain_pipe_[0]);
  ::close(drain_pipe_[1]);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

void Server::request_drain() {
  const char byte = 'x';
  // Best effort: the pipe only ever holds a handful of bytes and the read
  // side drains it; a failed write here means drain was already requested.
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

std::size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t active = 0;
  for (const auto& conn : conns_) {
    if (!conn->done.load(std::memory_order_relaxed)) ++active;
  }
  return active;
}

std::size_t Server::tracked_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

std::string Server::tcp_endpoint() const {
  if (tcp_listen_fd_ < 0) return std::string();
  return "tcp:" + tcp_host_ + ":" + std::to_string(tcp_port_);
}

void Server::accept_one(int listen_fd) {
  sockaddr_storage peer{};
  socklen_t peer_len = sizeof(peer);
  const int fd =
      ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &peer_len);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return;
    throw_errno("serve: accept");
  }
  set_tcp_nodelay(fd);

  std::lock_guard<std::mutex> lock(conns_mu_);
  reap_finished_locked();
  if (conns_.size() >=
      static_cast<std::size_t>(std::max(1, options_.max_connections))) {
    write_all(fd, Response::make_status("", "overloaded").to_line());
    ::close(fd);
    obs::Registry::global().counter("serve.rejected_connections").inc();
    return;
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conns_.push_back(conn);
  conn->thread = std::thread([this, conn] { handle_connection(conn); });
  obs::Registry::global().counter("serve.connections").inc();
}

void Server::run() {
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {drain_pipe_[0], POLLIN, 0};
    const int unix_slot = listen_fd_ >= 0 ? static_cast<int>(nfds) : -1;
    if (listen_fd_ >= 0) fds[nfds++] = {listen_fd_, POLLIN, 0};
    const int tcp_slot = tcp_listen_fd_ >= 0 ? static_cast<int>(nfds) : -1;
    if (tcp_listen_fd_ >= 0) fds[nfds++] = {tcp_listen_fd_, POLLIN, 0};

    // Finite timeout: the reap below runs even when no client ever
    // connects again, so finished handler threads are joined and their
    // fds closed without waiting for the next accept.
    const int ready = ::poll(fds, nfds, kReapIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve: poll");
    }
    if (fds[0].revents != 0) break;  // drain requested
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
    }
    if (ready == 0) continue;  // reap tick only
    if (unix_slot >= 0 && (fds[unix_slot].revents & POLLIN) != 0) {
      accept_one(listen_fd_);
    }
    if (tcp_slot >= 0 && (fds[tcp_slot].revents & POLLIN) != 0) {
      accept_one(tcp_listen_fd_);
    }
  }

  // --- drain sequence ---
  draining_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }

  // Finish (or checkpoint) every admitted job. Connection threads keep
  // serving during this: in-flight sync requests harvest their results,
  // new work is answered with {"status":"draining"}.
  jobs_.drain();

  // Unblock readers and join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
  }
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  using Clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  Clock::time_point last_activity = Clock::now();
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos && newline > options_.max_request_bytes) {
      // The whole oversized line arrived in one read; same verdict as the
      // never-sends-'\n' case below.
      obs::Registry::global().counter("serve.oversized_requests").inc();
      write_all(conn->fd,
                Response::make_error(
                    "", "request line exceeds " +
                            std::to_string(options_.max_request_bytes) +
                            " bytes")
                    .to_line());
      break;
    }
    if (newline != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;

      Response resp;
      try {
        const Request req = parse_request(line);
        resp = dispatch(conn, req);
      } catch (const std::exception& e) {
        resp = Response::make_error("", e.what());
      }
      if (!write_all(conn->fd, resp.to_line())) break;
      last_activity = Clock::now();
      continue;
    }

    // A peer that streams bytes without ever sending '\n' would otherwise
    // grow the buffer without bound; answer once, loudly, and hang up.
    if (buffer.size() > options_.max_request_bytes) {
      obs::Registry::global().counter("serve.oversized_requests").inc();
      write_all(conn->fd,
                Response::make_error(
                    "", "request line exceeds " +
                            std::to_string(options_.max_request_bytes) +
                            " bytes")
                    .to_line());
      break;
    }

    pollfd probe{conn->fd, POLLIN, 0};
    const int ready = ::poll(&probe, 1, kReapIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0 &&
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - last_activity)
                  .count() >= options_.idle_timeout_ms) {
        obs::Registry::global().counter("serve.idle_timeouts").inc();
        break;
      }
      continue;
    }
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // EOF. A half-closed peer may still have a buffered request without
      // its newline — nothing more can complete it, so hang up; complete
      // buffered lines were already answered above.
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_activity = Clock::now();
  }
  conn->done.store(true, std::memory_order_relaxed);
}

Response Server::dispatch(const std::shared_ptr<Connection>& conn,
                          const Request& request) {
  if (request.method == "ping") return handle_ping(request);
  if (request.method == "stats") return handle_stats(request);
  if (request.method == "submit") return handle_submit(request);
  if (request.method == "poll") return handle_poll(request);
  if (request.method == "wait") return handle_wait(request);
  if (request.method == "cancel") return handle_cancel(request);
  if (is_work_method(request.method)) return run_sync_work(conn, request);
  return Response::make_error(request.id,
                              "unknown method '" + request.method + "'");
}

Response Server::run_sync_work(const std::shared_ptr<Connection>& conn,
                               const Request& request) {
  // Sync = submit + wait + forget: the planner only ever runs on worker
  // threads, so concurrency is bounded by --workers and a full queue is an
  // immediate, explicit rejection.
  JobManager::Submitted submitted = jobs_.submit(
      request.method, [this, request](const std::atomic<bool>& stop) {
        return service_.execute(request, stop);
      });
  if (!submitted.ok()) {
    return Response::make_status(request.id, submitted.rejected);
  }
  // Wait in short ticks and watch the peer: a client that fully closed its
  // connection can no longer receive the result, so its job is cancelled
  // (queued jobs outright, running jobs via the cooperative stop flag)
  // instead of pinning a worker slot. Draining overrides the probe — the
  // drain sequence shuts down every connection fd, which reads as
  // POLLHUP, yet admitted jobs must still be harvested.
  std::optional<JobManager::JobView> view;
  for (;;) {
    view = jobs_.wait(submitted.job_id, kSyncWaitTickMs);
    if (view) break;
    if (!draining_.load(std::memory_order_relaxed) &&
        peer_vanished(conn->fd)) {
      jobs_.cancel(submitted.job_id);
      jobs_.forget(submitted.job_id);
      obs::Registry::global().counter("serve.sync_disconnect_cancels").inc();
      // The peer is gone; this response is never written.
      return Response::make_error(request.id,
                                  "client disconnected; job cancelled");
    }
  }
  jobs_.forget(submitted.job_id);
  Response resp = view->result;
  resp.id = request.id;
  return resp;
}

Response Server::handle_submit(const Request& request) {
  const std::string method = request.params.get_string("method", "");
  if (!is_work_method(method)) {
    return Response::make_error(
        request.id, "submit: params.method must be a work method");
  }
  Request work;
  work.method = method;
  if (const json::Value* params = request.params.as_object().find("params")) {
    if (!params->is_object()) {
      return Response::make_error(request.id,
                                  "submit: params.params must be an object");
    }
    work.params = *params;
  } else {
    work.params = json::Value(json::Object{});
  }

  JobManager::Submitted submitted = jobs_.submit(
      method, [this, work](const std::atomic<bool>& stop) {
        return service_.execute(work, stop);
      });
  if (!submitted.ok()) {
    return Response::make_status(request.id, submitted.rejected);
  }
  json::Object result;
  result["job_id"] = submitted.job_id;
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

namespace {

json::Value job_view_to_json(const JobManager::JobView& view) {
  json::Object out;
  out["job_id"] = view.id;
  out["method"] = view.method;
  out["priority"] = JobManager::priority_name(view.priority);
  out["state"] = JobManager::state_name(view.state);
  if (view.state == JobManager::State::kQueued) {
    // Jobs currently ordered ahead (a batch job counts queued interactive
    // work, which dispatch prefers) — progress indicator, not a promise.
    out["queued_behind"] = static_cast<std::int64_t>(view.queued_behind);
  }
  if (view.state == JobManager::State::kDone ||
      view.state == JobManager::State::kError ||
      view.state == JobManager::State::kCancelled) {
    out["response"] = view.result.to_json();
  }
  return json::Value(std::move(out));
}

}  // namespace

Response Server::handle_poll(const Request& request) {
  const std::string job_id = request.params.get_string("job_id", "");
  const std::optional<JobManager::JobView> view = jobs_.poll(job_id);
  if (!view) {
    return Response::make_error(request.id, "unknown job '" + job_id + "'");
  }
  return Response::make_ok(request.id, job_view_to_json(*view));
}

Response Server::handle_wait(const Request& request) {
  const std::string job_id = request.params.get_string("job_id", "");
  long long timeout_ms = request.params.get_int("timeout_ms", 0);
  if (timeout_ms <= 0 || timeout_ms > options_.max_wait_ms) {
    timeout_ms = options_.max_wait_ms;
  }
  const std::optional<JobManager::JobView> view =
      jobs_.wait(job_id, timeout_ms);
  if (!view) {
    if (!jobs_.poll(job_id)) {
      return Response::make_error(request.id,
                                  "unknown job '" + job_id + "'");
    }
    json::Object result;
    result["job_id"] = job_id;
    result["timed_out"] = true;
    return Response::make_ok(request.id, json::Value(std::move(result)));
  }
  return Response::make_ok(request.id, job_view_to_json(*view));
}

Response Server::handle_cancel(const Request& request) {
  const std::string job_id = request.params.get_string("job_id", "");
  const std::optional<JobManager::State> state = jobs_.cancel(job_id);
  if (!state) {
    return Response::make_error(request.id, "unknown job '" + job_id + "'");
  }
  json::Object result;
  result["job_id"] = job_id;
  result["state_at_cancel"] = JobManager::state_name(*state);
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

Response Server::handle_ping(const Request& request) const {
  json::Object result;
  result["schema"] = std::string(kProtocolSchema);
  result["draining"] = draining_.load(std::memory_order_relaxed) ||
                       jobs_.draining();
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

Response Server::handle_stats(const Request& request) {
  const PlanCache::Stats cache = service_.cache().stats();
  const JobManager::Stats jobs = jobs_.stats();

  json::Object cache_out;
  cache_out["hits"] = static_cast<std::int64_t>(cache.hits);
  cache_out["misses"] = static_cast<std::int64_t>(cache.misses);
  cache_out["coalesced"] = static_cast<std::int64_t>(cache.coalesced);
  cache_out["evictions"] = static_cast<std::int64_t>(cache.evictions);
  cache_out["spill_hits"] = static_cast<std::int64_t>(cache.spill_hits);
  cache_out["spill_writes"] = static_cast<std::int64_t>(cache.spill_writes);
  cache_out["spill_corrupt"] =
      static_cast<std::int64_t>(cache.spill_corrupt);
  cache_out["shards"] = static_cast<std::int64_t>(cache.shards);
  cache_out["entries"] = cache.entries;
  cache_out["in_flight"] = cache.in_flight;

  json::Object jobs_out;
  jobs_out["submitted"] = static_cast<std::int64_t>(jobs.submitted);
  jobs_out["rejected_overloaded"] = static_cast<std::int64_t>(jobs.rejected_overloaded);
  jobs_out["completed"] = static_cast<std::int64_t>(jobs.completed);
  jobs_out["queued"] = jobs.queued;
  jobs_out["queued_interactive"] = jobs.queued_interactive;
  jobs_out["queued_batch"] = jobs.queued_batch;
  jobs_out["starvation_promotions"] =
      static_cast<std::int64_t>(jobs.starvation_promotions);
  jobs_out["running"] = jobs.running;
  jobs_out["workers"] = jobs_.workers();

  json::Object result;
  result["cache"] = json::Value(std::move(cache_out));
  result["jobs"] = json::Value(std::move(jobs_out));
  result["connections"] =
      static_cast<std::int64_t>(active_connections());
  return Response::make_ok(request.id, json::Value(std::move(result)));
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_relaxed)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace klotski::serve
