// Transport endpoints of the plan service: where a daemon listens and a
// client connects, independent of the wire protocol (protocol.h) spoken on
// top. Two transports carry the same NDJSON byte stream:
//
//   AF_UNIX   "unix:/tmp/k.sock" or any spec containing '/'
//             — one box, filesystem permissions as access control
//   TCP       "tcp:HOST:PORT" or plain "HOST:PORT"
//             — the fleet front door; HOST may be a name (getaddrinfo) or a
//             numeric address, PORT 0 asks the kernel for an ephemeral port
//             (servers report the bound port via Server::tcp_endpoint())
//
// parse() is shared by every tool flag (--connect / --listen) so the two
// sides can never disagree about what a spec means. TCP sockets get
// TCP_NODELAY on both ends: the protocol is short request/response lines
// and Nagle would serialize them behind delayed ACKs.
#pragma once

#include <cstdint>
#include <string>

namespace klotski::serve {

struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: socket path
  std::string host;  // kTcp: hostname or numeric address
  std::uint16_t port = 0;

  /// Parses an endpoint spec (see file comment for the accepted forms).
  /// Throws std::invalid_argument on malformed specs.
  static Endpoint parse(const std::string& spec);

  /// Canonical spec string ("unix:/path" / "tcp:host:port").
  std::string describe() const;

  bool is_unix() const { return kind == Kind::kUnix; }
  bool is_tcp() const { return kind == Kind::kTcp; }
};

/// Connects a blocking stream socket to the endpoint; returns the fd.
/// Throws std::runtime_error (with the spec and errno text) on failure.
int connect_endpoint(const Endpoint& endpoint);

/// Enables TCP_NODELAY on a TCP socket; no-op for other address families.
void set_tcp_nodelay(int fd);

}  // namespace klotski::serve
