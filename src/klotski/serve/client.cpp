#include "klotski/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace klotski::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: connect " + socket_path + ": " +
                             std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Response Client::call(const Request& request) {
  const std::string line = json::dump(request.to_json()) + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve client: write: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }

  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string resp_line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return Response::parse(resp_line);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve client: read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error(
          "serve client: connection closed mid-call");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::call(const std::string& method, json::Value params,
                      const std::string& id) {
  Request req;
  req.id = id;
  req.method = method;
  req.params = std::move(params);
  return call(req);
}

}  // namespace klotski::serve
