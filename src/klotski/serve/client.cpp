#include "klotski/serve/client.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace klotski::serve {

Client::Client(const Endpoint& endpoint) : endpoint_(endpoint) {
  fd_ = connect_endpoint(endpoint_);
}

Client::Client(const std::string& spec) : Client(Endpoint::parse(spec)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      fd_(other.fd_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    endpoint_ = std::move(other.endpoint_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect_with_retry(const Endpoint& endpoint, int attempts,
                                  long long backoff_ms) {
  long long sleep_ms = backoff_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      return Client(endpoint);
    } catch (const std::exception&) {
      if (attempt >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    sleep_ms *= 2;
  }
}

Response Client::call(const Request& request) {
  const std::string line = json::dump(request.to_json()) + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve client: write: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }

  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string resp_line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return Response::parse(resp_line);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve client: read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error(
          "serve client: connection closed mid-call");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::call(const std::string& method, json::Value params,
                      const std::string& id) {
  Request req;
  req.id = id;
  req.method = method;
  req.params = std::move(params);
  return call(req);
}

Response Client::submit_and_wait(const std::string& method,
                                 json::Value params, const std::string& id,
                                 long long wait_slice_ms) {
  json::Object submit;
  submit["method"] = method;
  submit["params"] = std::move(params);
  Response submitted = call("submit", json::Value(std::move(submit)), id);
  if (!submitted.ok()) return submitted;  // overloaded / draining / error
  const std::string job_id = submitted.result.get_string("job_id", "");
  if (job_id.empty()) {
    throw std::runtime_error("serve client: submit returned no job_id");
  }

  for (;;) {
    json::Object wait;
    wait["job_id"] = job_id;
    wait["timeout_ms"] = static_cast<std::int64_t>(wait_slice_ms);
    const Response waited = call("wait", json::Value(std::move(wait)));
    if (!waited.ok()) {
      Response out = waited;
      out.id = id;
      return out;
    }
    if (waited.result.get_bool("timed_out", false)) continue;

    const json::Value* inner = waited.result.as_object().find("response");
    if (inner == nullptr) {
      throw std::runtime_error(
          "serve client: job terminal without a response document");
    }
    Response out = Response::parse(json::dump(*inner));
    out.id = id;
    return out;
  }
}

}  // namespace klotski::serve
