// Stream-socket server for the klotski.serve.v1 protocol, over one or both
// transports:
//
//   AF_UNIX (Options::socket_path)  — one box, filesystem permissions as
//       access control, short deterministic paths for tests
//   TCP (Options::listen, "host:port") — the fleet front door; port 0 binds
//       an ephemeral port, reported by tcp_endpoint()
//
// Both listeners feed the same accept loop and speak the same NDJSON
// protocol. Each accepted connection gets one handler thread; requests may
// be pipelined (the server answers buffered lines in order), and
// concurrency across connections is bounded by max_connections while
// planner concurrency is bounded by the JobManager's worker pool — every
// work request, sync or async, goes through the same admission-controlled
// queue.
//
// The read loop is hardened for untrusted remote peers:
//   - a request line longer than max_request_bytes is answered with one
//     status:"error" response and the connection is closed (a peer cannot
//     grow the buffer without bound by never sending '\n');
//   - a connection idle longer than idle_timeout_ms (no request bytes, no
//     in-flight request) is closed;
//   - finished connection threads are reaped on a periodic poll tick, not
//     only on the next accept, so an idle server still joins threads and
//     closes fds after clients disconnect;
//   - a sync work request whose peer vanishes mid-wait (POLLERR/POLLHUP —
//     a full close, not a half-close) cancels its job, so dead clients
//     cannot pin worker slots. A half-close (shutdown(SHUT_WR)) still
//     receives its responses.
//
// Control methods (ping / stats / poll / wait / cancel / submit) are
// answered inline by the connection thread; work methods (plan / audit /
// chaos / replan) are submitted as jobs. A sync work request is
// submit + wait + forget, so it occupies only its connection thread while
// queued; when the queue is full the client sees {"status":"overloaded"}
// immediately.
//
// Graceful drain: request_drain() (async-signal-safe: one write to a
// self-pipe) makes run() stop accepting, rejects new work with
// {"status":"draining"}, sets every job's stop flag (replan jobs
// checkpoint, chaos jobs stop between seeds), waits for admitted work to
// finish, unblocks and joins the connection threads, then returns — the
// daemon flushes metrics and exits 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "klotski/serve/endpoint.h"
#include "klotski/serve/job_manager.h"
#include "klotski/serve/protocol.h"
#include "klotski/serve/service.h"

namespace klotski::serve {

class Server {
 public:
  struct Options {
    /// AF_UNIX path; kept short (sun_path is ~100 bytes). An existing
    /// socket file at the path is replaced. Empty = no unix listener
    /// (then `listen` is required).
    std::string socket_path;
    /// TCP listen spec "host:port" (port 0 = ephemeral, see
    /// tcp_endpoint()). Empty = no TCP listener.
    std::string listen;
    PlanService::Options service;
    JobManager::Options jobs;
    int max_connections = 64;
    /// Per-wait cap for the `wait` method so one client cannot pin a
    /// connection thread forever; clients re-issue to keep waiting.
    long long max_wait_ms = 60'000;
    /// Hard cap on one request line; beyond it the server answers
    /// status:"error" and closes the connection.
    std::size_t max_request_bytes = 1 << 20;
    /// Close connections idle (no request bytes) this long; 0 disables.
    long long idle_timeout_ms = 0;
  };

  /// Binds and listens on the configured transports; throws
  /// std::runtime_error on socket errors.
  explicit Server(const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until request_drain(), then drains and returns.
  void run();

  /// Triggers the drain sequence. Async-signal-safe (one write() to the
  /// self-pipe); callable from any thread or a signal handler via
  /// drain_fd().
  void request_drain();

  /// Write end of the self-pipe, for signal handlers:
  /// write(drain_fd(), "x", 1).
  int drain_fd() const { return drain_pipe_[1]; }

  const std::string& socket_path() const { return options_.socket_path; }
  /// The bound TCP endpoint ("tcp:host:port" with the real port, even when
  /// Options::listen asked for port 0); empty when TCP is not enabled.
  std::string tcp_endpoint() const;
  std::uint16_t tcp_port() const { return tcp_port_; }

  PlanService& service() { return service_; }
  JobManager& jobs() { return jobs_; }
  /// Connections whose handler thread has not finished.
  std::size_t active_connections() const;
  /// Connections still tracked (including finished-but-unreaped ones);
  /// the periodic reap drives this back to active_connections().
  std::size_t tracked_connections() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_one(int listen_fd);
  void handle_connection(const std::shared_ptr<Connection>& conn);
  Response dispatch(const std::shared_ptr<Connection>& conn,
                    const Request& request);
  Response run_sync_work(const std::shared_ptr<Connection>& conn,
                         const Request& request);
  Response handle_submit(const Request& request);
  Response handle_poll(const Request& request);
  Response handle_wait(const Request& request);
  Response handle_cancel(const Request& request);
  Response handle_ping(const Request& request) const;
  Response handle_stats(const Request& request);
  void reap_finished_locked();

  Options options_;
  PlanService service_;
  JobManager jobs_;

  int listen_fd_ = -1;      // AF_UNIX, -1 when disabled
  int tcp_listen_fd_ = -1;  // TCP, -1 when disabled
  std::string tcp_host_;
  std::uint16_t tcp_port_ = 0;
  int drain_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  mutable std::mutex conns_mu_;
  std::list<std::shared_ptr<Connection>> conns_;
};

}  // namespace klotski::serve
