// Unix-domain-socket server for the klotski.serve.v1 protocol.
//
// Transport: newline-delimited JSON over AF_UNIX stream sockets — no
// external dependencies, filesystem permissions as access control, and
// short deterministic paths for tests. Each accepted connection gets one
// handler thread speaking strict request/response lockstep (no pipelining);
// concurrency across connections is bounded by max_connections, and
// planner concurrency is bounded by the JobManager's worker pool — every
// work request, sync or async, goes through the same admission-controlled
// queue.
//
// Control methods (ping / stats / poll / wait / cancel / submit) are
// answered inline by the connection thread; work methods (plan / audit /
// chaos / replan) are submitted as jobs. A sync work request is
// submit + wait + forget, so it occupies only its connection thread while
// queued; when the queue is full the client sees {"status":"overloaded"}
// immediately.
//
// Graceful drain: request_drain() (async-signal-safe: one write to a
// self-pipe) makes run() stop accepting, rejects new work with
// {"status":"draining"}, sets every job's stop flag (replan jobs
// checkpoint, chaos jobs stop between seeds), waits for admitted work to
// finish, unblocks and joins the connection threads, then returns — the
// daemon flushes metrics and exits 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "klotski/serve/job_manager.h"
#include "klotski/serve/protocol.h"
#include "klotski/serve/service.h"

namespace klotski::serve {

class Server {
 public:
  struct Options {
    /// AF_UNIX path; kept short (sun_path is ~100 bytes). An existing
    /// socket file at the path is replaced.
    std::string socket_path;
    PlanService::Options service;
    JobManager::Options jobs;
    int max_connections = 64;
    /// Per-wait cap for the `wait` method so one client cannot pin a
    /// connection thread forever; clients re-issue to keep waiting.
    long long max_wait_ms = 60'000;
  };

  /// Binds and listens; throws std::runtime_error on socket errors.
  explicit Server(const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until request_drain(), then drains and returns.
  void run();

  /// Triggers the drain sequence. Async-signal-safe (one write() to the
  /// self-pipe); callable from any thread or a signal handler via
  /// drain_fd().
  void request_drain();

  /// Write end of the self-pipe, for signal handlers:
  /// write(drain_fd(), "x", 1).
  int drain_fd() const { return drain_pipe_[1]; }

  const std::string& socket_path() const { return options_.socket_path; }
  PlanService& service() { return service_; }
  JobManager& jobs() { return jobs_; }
  std::size_t active_connections() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void handle_connection(const std::shared_ptr<Connection>& conn);
  Response dispatch(const Request& request);
  Response run_sync_work(const Request& request);
  Response handle_submit(const Request& request);
  Response handle_poll(const Request& request);
  Response handle_wait(const Request& request);
  Response handle_cancel(const Request& request);
  Response handle_ping(const Request& request) const;
  Response handle_stats(const Request& request);
  void reap_finished_locked();

  Options options_;
  PlanService service_;
  JobManager jobs_;

  int listen_fd_ = -1;
  int drain_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  mutable std::mutex conns_mu_;
  std::list<std::shared_ptr<Connection>> conns_;
};

}  // namespace klotski::serve
