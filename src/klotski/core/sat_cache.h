// The satisfiability cache T_C of §4.2 (efficient satisfiability checking).
//
// Keys are compact topology representations; values are check verdicts.
// Indexing a handful of int32 counters is what makes caching affordable at
// O(10,000)-switch scale — storing whole topologies would not be.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "klotski/core/compact_state.h"

namespace klotski::core {

class SatCache {
 public:
  std::optional<bool> lookup(const CountVector& counts) const {
    const auto it = table_.find(counts);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  void store(const CountVector& counts, bool satisfiable) {
    table_.emplace(counts, satisfiable);
  }

  std::size_t size() const { return table_.size(); }
  void clear() { table_.clear(); }

  /// Approximate resident bytes (table nodes + key payloads); the compact
  /// representation makes this a few dozen bytes per state.
  std::size_t approx_memory_bytes() const;

 private:
  std::unordered_map<CountVector, bool, CountVectorHash> table_;
};

}  // namespace klotski::core
