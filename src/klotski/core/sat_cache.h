// The satisfiability cache T_C of §4.2 (efficient satisfiability checking).
//
// Keys are compact topology representations; values are check verdicts.
// Indexing a handful of int32 counters is what makes caching affordable at
// O(10,000)-switch scale — storing whole topologies would not be.
//
// Storage is an open-addressing table keyed by the incremental Zobrist hash
// (StateHasher), with key payloads packed into one flat int32 pool: a probe
// touches one 16-byte slot and compares the count span only on a full
// 64-bit hash match, so lookups never rehash V and the footprint is exact.
//
// Growth is bounded: the cache holds at most max_entries() live entries per
// *generation* and rotates generations when the current one fills — the
// previous old generation (the coldest ~half of the cache) is dropped in
// O(1) and counted as evictions. A hit in the old generation promotes the
// entry into the current one, so recently-used verdicts survive rotation
// (LRU-ish second-chance semantics without per-entry bookkeeping). Verdicts
// are immutable, so dropping entries only costs re-checks, never
// correctness; duplicate stores keep the first verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "klotski/core/compact_state.h"

namespace klotski::core {

class SatCache {
 public:
  /// Per-generation entry cap; total live entries stay under 2x this.
  static constexpr std::size_t kDefaultMaxEntries = std::size_t{1} << 20;

  std::optional<bool> lookup(const std::int32_t* counts, std::size_t n,
                             std::uint64_t hash);
  void store(const std::int32_t* counts, std::size_t n, std::uint64_t hash,
             bool satisfiable);

  std::optional<bool> lookup(const CountVector& counts) {
    return lookup(counts.data(), counts.size(), StateHasher::hash(counts));
  }
  void store(const CountVector& counts, bool satisfiable) {
    store(counts.data(), counts.size(), StateHasher::hash(counts),
          satisfiable);
  }

  /// Caps live entries per generation; takes effect on the next store.
  /// Shrinking below the current fill rotates lazily, it does not flush.
  void set_max_entries(std::size_t cap) { max_entries_ = cap ? cap : 1; }
  std::size_t max_entries() const { return max_entries_; }

  std::size_t size() const { return cur_.size + old_.size; }
  void clear();

  /// Cross-epoch carry for warm-start replanning (DESIGN.md §11): builds a
  /// fresh cache whose entries are this cache's live entries re-keyed into
  /// the next planning epoch's coordinates. `delta` (length n) is the
  /// per-type count of blocks executed between the epochs; an entry keyed
  /// (v_i) becomes (v_i - delta_i) and is dropped when any component would
  /// go negative (the state precedes the new origin). keep_sat / keep_unsat
  /// select which verdicts the caller proved still valid under the new
  /// epoch's demands and capacities (pipeline/replan.cpp owns the
  /// monotonicity rules); carried verdicts must be *provably identical* to
  /// a fresh check, so seeding a planner with them cannot change its
  /// output, only its latency. Entries with a different arity are dropped.
  SatCache carried(const std::int32_t* delta, std::size_t n, bool keep_sat,
                   bool keep_unsat) const;

  /// Opaque tag identifying the planning epoch this cache was filled in
  /// (the replan driver stamps the topology state-version); serialized into
  /// checkpoints as warm-state provenance.
  void set_epoch_key(std::uint64_t key) { epoch_key_ = key; }
  std::uint64_t epoch_key() const { return epoch_key_; }

  /// Entries dropped by generation rotation since construction.
  long long evictions() const { return evictions_; }

  /// Approximate resident bytes (slot tables + key pools), exact up to the
  /// vector headers; the compact representation makes this a few dozen
  /// bytes per state.
  std::size_t approx_memory_bytes() const;

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t key_pos = 0;  // offset into Gen::keys
    std::uint16_t key_len = 0;
    std::uint8_t state = 0;  // 0 empty, 1 live, 2 tombstone (promoted away)
    std::uint8_t verdict = 0;
  };

  struct Gen {
    std::vector<Slot> slots;
    std::vector<std::int32_t> keys;  // flat key payloads
    std::size_t size = 0;
    std::size_t mask = 0;
  };

  Slot* find(Gen& gen, const std::int32_t* counts, std::size_t n,
             std::uint64_t hash);
  void insert_current(const std::int32_t* counts, std::size_t n,
                      std::uint64_t hash, bool satisfiable);
  void rotate();
  static void grow(Gen& gen);

  Gen cur_;
  Gen old_;
  std::size_t max_entries_ = kDefaultMaxEntries;
  long long evictions_ = 0;
  std::uint64_t epoch_key_ = 0;
};

}  // namespace klotski::core
