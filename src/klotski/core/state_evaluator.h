// Materializes compact states onto the task topology and checks the safety
// constraints, with the §4.2 satisfiability cache in front.
//
// Evaluating V = (v_i): restore the original element states, apply the
// first v_i blocks of every type i, run the constraint checkers. The
// restore+apply pass is O(|S| + |C| + touched elements), dominated by the
// demand check itself, matching the per-state cost in Theorems 1-2.
#pragma once

#include <cstdint>

#include "klotski/constraints/composite.h"
#include "klotski/core/sat_cache.h"
#include "klotski/migration/task.h"

namespace klotski::core {

class StateEvaluator {
 public:
  /// `use_cache = false` gives the "Klotski w/o ESC" ablation.
  StateEvaluator(migration::MigrationTask& task,
                 constraints::CompositeChecker& checker, bool use_cache);

  /// True iff the intermediate topology after `counts` satisfies all
  /// constraints. Leaves the topology in an unspecified element state;
  /// call materialize() or task.reset_to_original() when a specific state
  /// is needed afterwards.
  bool feasible(const CountVector& counts);

  /// Applies `counts` onto the topology and leaves it there (inspection /
  /// audit / phase export).
  void materialize(const CountVector& counts);

  /// Target compact state (all blocks of every type done).
  const CountVector& target() const { return target_; }

  long long sat_checks() const { return sat_checks_; }
  long long cache_hits() const { return cache_hits_; }
  const SatCache& cache() const { return cache_; }
  migration::MigrationTask& task() { return task_; }
  constraints::CompositeChecker& checker() { return checker_; }

 private:
  migration::MigrationTask& task_;
  constraints::CompositeChecker& checker_;
  bool use_cache_;
  SatCache cache_;
  CountVector target_;
  long long sat_checks_ = 0;
  long long cache_hits_ = 0;
};

}  // namespace klotski::core
