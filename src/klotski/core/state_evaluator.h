// Materializes compact states onto the task topology and checks the safety
// constraints, with the §4.2 satisfiability cache in front.
//
// Evaluating V = (v_i) from scratch costs O(|S| + |C| + applied ops): restore
// the original element states, apply the first v_i blocks of every type i,
// run the constraint checkers. That full replay is only the fallback. The
// evaluator tracks the count vector it last materialized together with the
// topology's state version; when both still match, it flips only the ops of
// the blocks that differ between the current and requested vectors (delta
// materialization). Overlap-free blocks use OperationBlock::apply/unapply
// directly; elements shared between blocks are resolved from precomputed
// per-element op lists so the result is bit-identical to a full replay in
// canonical order, whatever the overlap pattern.
//
// Delta materialization is what feeds the ECMP router's incremental path:
// the few element flips land in the topology's change journal, and the
// router's dirty-group screening turns them into a handful of demand-group
// recomputes per check (optionally spread over EcmpRouter::set_num_workers
// threads) instead of a full reroute.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "klotski/constraints/composite.h"
#include "klotski/core/sat_cache.h"
#include "klotski/migration/task.h"

namespace klotski::core {

class StateEvaluator {
 public:
  /// `use_cache = false` gives the "Klotski w/o ESC" ablation.
  StateEvaluator(migration::MigrationTask& task,
                 constraints::CompositeChecker& checker, bool use_cache);

  /// True iff the intermediate topology after `counts` satisfies all
  /// constraints. Leaves the topology in an unspecified element state;
  /// call materialize() or task.reset_to_original() when a specific state
  /// is needed afterwards.
  bool feasible(const CountVector& counts);

  /// Span form for planners that carry the count hash incrementally
  /// (StateHasher::update along search edges): the cache probe reuses
  /// `hash` instead of rehashing V. `counts` must have target().size()
  /// entries and `hash` must equal StateHasher::hash over them.
  bool feasible(const std::int32_t* counts, std::uint64_t hash);

  /// Applies `counts` onto the topology and leaves it there (inspection /
  /// audit / phase export).
  void materialize(const CountVector& counts);

  /// Target compact state (all blocks of every type done).
  const CountVector& target() const { return target_; }

  /// Disables the delta fast path (every materialization replays from the
  /// original state). For ablations and the delta-vs-replay benchmarks.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  /// Shared-cache plumbing for ParallelEvaluator: batch verdicts computed on
  /// worker clones are merged back through these, keeping the stats
  /// consistent with the serial accounting.
  bool use_cache() const { return use_cache_; }
  std::optional<bool> cache_lookup(const std::int32_t* counts,
                                   std::uint64_t hash) {
    return cache_->lookup(counts, target_.size(), hash);
  }
  void cache_store(const std::int32_t* counts, std::uint64_t hash, bool ok) {
    cache_->store(counts, target_.size(), hash, ok);
  }
  std::optional<bool> cache_lookup(const CountVector& counts) {
    return cache_->lookup(counts);
  }
  void cache_store(const CountVector& counts, bool ok) {
    cache_->store(counts, ok);
  }

  /// Warm-start plumbing (PlannerOptions::warm): replaces the verdict cache
  /// with a shared instance — carried over from a previous planning epoch,
  /// and harvestable by the caller after the search. Every carried entry
  /// must hold a verdict identical to what a fresh check would produce for
  /// this evaluator's task; call before the first evaluation.
  void adopt_cache(std::shared_ptr<SatCache> cache) {
    if (cache != nullptr) cache_ = std::move(cache);
  }
  const std::shared_ptr<SatCache>& shared_cache() const { return cache_; }

  /// Caps the satisfiability cache (SatCache::set_max_entries); the
  /// budgeted planners derive this from --mem-budget-mb.
  void set_cache_capacity(std::size_t max_entries) {
    cache_->set_max_entries(max_entries);
  }
  std::size_t cache_bytes() const { return cache_->approx_memory_bytes(); }
  /// Merges verdict counts computed on worker clones into this evaluator's
  /// accounting. The delta/full split is *logical*: it mirrors what this
  /// evaluator's own materialize() would have decided for each of the
  /// `sat_checks` evaluations had they run serially, so the counters stay
  /// identical across PlannerOptions::num_threads even though each worker
  /// clone physically pays its own warm-up replay.
  void absorb_external(long long sat_checks, long long cache_hits);

  long long sat_checks() const { return sat_checks_; }
  long long cache_hits() const { return cache_hits_; }
  /// Total feasibility queries; always sat_checks() + cache_hits().
  long long evaluations() const { return evaluations_; }
  long long delta_applies() const { return delta_applies_; }
  long long full_replays() const { return full_replays_; }
  const SatCache& cache() const { return *cache_; }
  migration::MigrationTask& task() { return task_; }
  constraints::CompositeChecker& checker() { return checker_; }

 private:
  /// One op touching an element, keyed by its position in the canonical
  /// replay order (type ascending, block index ascending). An element's
  /// materialized state is the `to` of the last applied op in this order,
  /// or the original state when none is applied.
  struct OpRef {
    std::int32_t type;
    std::int32_t block;
    topo::ElementState to;
  };

  void validate_counts(const std::int32_t* counts) const;
  void materialize_span(const std::int32_t* counts);
  void full_materialize(const std::int32_t* counts);
  void delta_materialize(const std::int32_t* counts);
  void resolve_switch(topo::SwitchId id, const std::int32_t* counts);
  void resolve_circuit(topo::CircuitId id, const std::int32_t* counts);

  migration::MigrationTask& task_;
  constraints::CompositeChecker& checker_;
  bool use_cache_;
  bool incremental_ = true;
  std::shared_ptr<SatCache> cache_ = std::make_shared<SatCache>();
  CountVector target_;
  long long sat_checks_ = 0;
  long long cache_hits_ = 0;
  long long evaluations_ = 0;
  long long delta_applies_ = 0;
  long long full_replays_ = 0;

  // Per-element op lists in canonical order (built once; empty for elements
  // no block touches) and the per-block overlap-free flags.
  std::vector<std::vector<OpRef>> switch_ops_;
  std::vector<std::vector<OpRef>> circuit_ops_;
  std::vector<std::vector<std::uint8_t>> overlap_free_;

  // The materialized state the topology currently holds, valid only while
  // the topology's version still matches (external mutations force a full
  // replay on the next materialization).
  CountVector current_;
  bool current_valid_ = false;
  std::uint64_t current_version_ = 0;

  // Scratch for dirty-element dedup during delta transitions.
  std::vector<std::uint32_t> switch_stamp_;
  std::vector<std::uint32_t> circuit_stamp_;
  std::uint32_t stamp_epoch_ = 0;
  std::vector<topo::SwitchId> dirty_switches_;
  std::vector<topo::CircuitId> dirty_circuits_;
};

}  // namespace klotski::core
