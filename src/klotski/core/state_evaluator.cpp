#include "klotski/core/state_evaluator.h"

#include <stdexcept>

namespace klotski::core {

StateEvaluator::StateEvaluator(migration::MigrationTask& task,
                               constraints::CompositeChecker& checker,
                               bool use_cache)
    : task_(task), checker_(checker), use_cache_(use_cache) {
  target_.reserve(task.blocks.size());
  for (const auto& type_blocks : task.blocks) {
    target_.push_back(static_cast<std::int32_t>(type_blocks.size()));
  }
}

void StateEvaluator::materialize(const CountVector& counts) {
  if (counts.size() != task_.blocks.size()) {
    throw std::invalid_argument("StateEvaluator: count vector arity mismatch");
  }
  task_.reset_to_original();
  for (std::size_t t = 0; t < counts.size(); ++t) {
    const auto done = static_cast<std::size_t>(counts[t]);
    if (done > task_.blocks[t].size()) {
      throw std::out_of_range("StateEvaluator: count exceeds block count");
    }
    for (std::size_t i = 0; i < done; ++i) {
      task_.blocks[t][i].apply(*task_.topo);
    }
  }
}

bool StateEvaluator::feasible(const CountVector& counts) {
  if (use_cache_) {
    if (const auto cached = cache_.lookup(counts)) {
      ++cache_hits_;
      return *cached;
    }
  }
  materialize(counts);
  ++sat_checks_;
  const bool ok = checker_.check(*task_.topo).satisfied;
  if (use_cache_) cache_.store(counts, ok);
  return ok;
}

}  // namespace klotski::core
