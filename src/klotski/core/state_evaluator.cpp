#include "klotski/core/state_evaluator.h"

#include <stdexcept>

namespace klotski::core {

StateEvaluator::StateEvaluator(migration::MigrationTask& task,
                               constraints::CompositeChecker& checker,
                               bool use_cache)
    : task_(task), checker_(checker), use_cache_(use_cache) {
  target_.reserve(task.blocks.size());
  for (const auto& type_blocks : task.blocks) {
    target_.push_back(static_cast<std::int32_t>(type_blocks.size()));
  }

  // Per-element op lists: iterating (type asc, block asc, op asc) appends in
  // canonical replay order, so each list is sorted by position already.
  switch_ops_.resize(task.topo->num_switches());
  circuit_ops_.resize(task.topo->num_circuits());
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    for (std::size_t b = 0; b < task.blocks[t].size(); ++b) {
      for (const migration::ElementOp& op : task.blocks[t][b].ops) {
        auto& list = op.kind == migration::ElementOp::Kind::kSwitch
                         ? switch_ops_[static_cast<std::size_t>(op.id)]
                         : circuit_ops_[static_cast<std::size_t>(op.id)];
        list.push_back(OpRef{static_cast<std::int32_t>(t),
                             static_cast<std::int32_t>(b), op.to});
      }
    }
  }

  // A block is overlap-free when no *other* block touches any of its
  // elements; it can then be applied/unapplied blindly. Shared elements go
  // through per-element resolution instead.
  overlap_free_.resize(task.blocks.size());
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    overlap_free_[t].resize(task.blocks[t].size(), 1);
    for (std::size_t b = 0; b < task.blocks[t].size(); ++b) {
      for (const migration::ElementOp& op : task.blocks[t][b].ops) {
        const auto& list = op.kind == migration::ElementOp::Kind::kSwitch
                               ? switch_ops_[static_cast<std::size_t>(op.id)]
                               : circuit_ops_[static_cast<std::size_t>(op.id)];
        for (const OpRef& ref : list) {
          if (ref.type != static_cast<std::int32_t>(t) ||
              ref.block != static_cast<std::int32_t>(b)) {
            overlap_free_[t][b] = 0;
            break;
          }
        }
        if (!overlap_free_[t][b]) break;
      }
    }
  }

  switch_stamp_.assign(task.topo->num_switches(), 0);
  circuit_stamp_.assign(task.topo->num_circuits(), 0);
}

void StateEvaluator::validate_counts(const std::int32_t* counts) const {
  for (std::size_t t = 0; t < task_.blocks.size(); ++t) {
    if (counts[t] < 0 ||
        static_cast<std::size_t>(counts[t]) > task_.blocks[t].size()) {
      throw std::out_of_range("StateEvaluator: count exceeds block count");
    }
  }
}

void StateEvaluator::full_materialize(const std::int32_t* counts) {
  task_.reset_to_original();
  for (std::size_t t = 0; t < task_.blocks.size(); ++t) {
    const auto done = static_cast<std::size_t>(counts[t]);
    for (std::size_t i = 0; i < done; ++i) {
      task_.blocks[t][i].apply(*task_.topo);
    }
  }
}

void StateEvaluator::resolve_switch(topo::SwitchId id,
                                    const std::int32_t* counts) {
  const auto& list = switch_ops_[static_cast<std::size_t>(id)];
  for (std::size_t i = list.size(); i-- > 0;) {
    const OpRef& ref = list[i];
    if (ref.block < counts[static_cast<std::size_t>(ref.type)]) {
      task_.topo->set_switch_state(id, ref.to);
      return;
    }
  }
  task_.topo->set_switch_state(
      id, task_.original_state.switch_states[static_cast<std::size_t>(id)]);
}

void StateEvaluator::resolve_circuit(topo::CircuitId id,
                                     const std::int32_t* counts) {
  const auto& list = circuit_ops_[static_cast<std::size_t>(id)];
  for (std::size_t i = list.size(); i-- > 0;) {
    const OpRef& ref = list[i];
    if (ref.block < counts[static_cast<std::size_t>(ref.type)]) {
      task_.topo->set_circuit_state(id, ref.to);
      return;
    }
  }
  task_.topo->set_circuit_state(
      id, task_.original_state.circuit_states[static_cast<std::size_t>(id)]);
}

void StateEvaluator::delta_materialize(const std::int32_t* counts) {
  // Pass 1: toggle overlap-free blocks directly; collect the elements of
  // shared blocks for resolution. The resolution below reads only `counts`
  // and per-element op lists, so pass order does not matter.
  ++stamp_epoch_;
  dirty_switches_.clear();
  dirty_circuits_.clear();
  for (std::size_t t = 0; t < task_.blocks.size(); ++t) {
    const std::int32_t cur = current_[t];
    const std::int32_t req = counts[t];
    if (cur == req) continue;
    const bool applying = req > cur;
    const std::int32_t lo = applying ? cur : req;
    const std::int32_t hi = applying ? req : cur;
    for (std::int32_t b = lo; b < hi; ++b) {
      const migration::OperationBlock& block =
          task_.blocks[t][static_cast<std::size_t>(b)];
      if (overlap_free_[t][static_cast<std::size_t>(b)]) {
        if (applying) {
          block.apply(*task_.topo);
        } else {
          block.unapply(*task_.topo, task_.original_state);
        }
        continue;
      }
      for (const migration::ElementOp& op : block.ops) {
        if (op.kind == migration::ElementOp::Kind::kSwitch) {
          auto& stamp = switch_stamp_[static_cast<std::size_t>(op.id)];
          if (stamp != stamp_epoch_) {
            stamp = stamp_epoch_;
            dirty_switches_.push_back(op.id);
          }
        } else {
          auto& stamp = circuit_stamp_[static_cast<std::size_t>(op.id)];
          if (stamp != stamp_epoch_) {
            stamp = stamp_epoch_;
            dirty_circuits_.push_back(op.id);
          }
        }
      }
    }
  }

  // Pass 2: shared elements take the state of their last applied op in
  // canonical order — exactly what a full replay would leave behind.
  for (const topo::SwitchId id : dirty_switches_) resolve_switch(id, counts);
  for (const topo::CircuitId id : dirty_circuits_) resolve_circuit(id, counts);
}

void StateEvaluator::materialize(const CountVector& counts) {
  if (counts.size() != task_.blocks.size()) {
    throw std::invalid_argument("StateEvaluator: count vector arity mismatch");
  }
  materialize_span(counts.data());
}

void StateEvaluator::materialize_span(const std::int32_t* counts) {
  validate_counts(counts);
  const bool delta_ok = incremental_ && current_valid_ &&
                        task_.topo->state_version() == current_version_;
  if (delta_ok) {
    delta_materialize(counts);
    ++delta_applies_;
  } else {
    full_materialize(counts);
    ++full_replays_;
  }
  current_.assign(counts, counts + task_.blocks.size());
  current_valid_ = true;
  current_version_ = task_.topo->state_version();
}

bool StateEvaluator::feasible(const CountVector& counts) {
  if (counts.size() != task_.blocks.size()) {
    throw std::invalid_argument("StateEvaluator: count vector arity mismatch");
  }
  return feasible(counts.data(), StateHasher::hash(counts));
}

bool StateEvaluator::feasible(const std::int32_t* counts,
                              std::uint64_t hash) {
  ++evaluations_;
  const std::size_t n = target_.size();
  if (use_cache_) {
    if (const auto cached = cache_->lookup(counts, n, hash)) {
      ++cache_hits_;
      return *cached;
    }
  }
  materialize_span(counts);
  ++sat_checks_;
  const bool ok = checker_.check(*task_.topo).satisfied;
  if (use_cache_) cache_->store(counts, n, hash, ok);
  return ok;
}

void StateEvaluator::absorb_external(long long sat_checks,
                                     long long cache_hits) {
  sat_checks_ += sat_checks;
  cache_hits_ += cache_hits;
  evaluations_ += sat_checks + cache_hits;
  // Logical delta/full attribution: serial execution of these evaluations
  // would have materialized each one, the first from scratch only when this
  // evaluator has no valid resident state (planners always check the origin
  // serially first, so in practice all absorbed evaluations count as delta).
  long long delta = sat_checks;
  const bool delta_ok = incremental_ && current_valid_ &&
                        task_.topo->state_version() == current_version_;
  if (!delta_ok && sat_checks > 0) {
    ++full_replays_;
    --delta;
  }
  delta_applies_ += delta;
}

}  // namespace klotski::core
