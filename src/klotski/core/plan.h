// Migration plans: the planner output (ordered actions + cost + search
// statistics) and the phase view the EDP pipeline exports (one phase = one
// maximal run of same-type actions, executed in parallel by the field
// crews).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "klotski/migration/task.h"

namespace klotski::core {

struct PlannedAction {
  migration::ActionTypeId type = migration::kNoAction;
  /// Index into task.blocks[type]; the planner always emits the blocks of a
  /// type in their fixed order, so this is the running count - 1.
  std::int32_t block_index = -1;

  friend bool operator==(const PlannedAction&, const PlannedAction&) = default;
};

struct Phase {
  migration::ActionTypeId type = migration::kNoAction;
  std::vector<std::int32_t> block_indices;
};

struct PlannerStats {
  long long visited_states = 0;    // states expanded / DP cells filled
  long long generated_states = 0;  // successor candidates examined
  long long sat_checks = 0;        // actual constraint evaluations
  long long cache_hits = 0;        // §4.2 cache hits
  long long evaluations = 0;       // feasibility queries (= hits + checks)
  long long delta_applies = 0;     // materializations via the delta path
  long long full_replays = 0;      // materializations replayed from scratch
  long long frontier_peak = 0;     // A* open-list high-water (0 for DP)
  double wall_seconds = 0.0;
};

/// How the memory-budgeted search behaved (PlannerOptions::mem_budget_mb).
/// beam_degraded means open-list entries were evicted, so the plan is a
/// beam-search result: still audited end to end, but the cost-optimality
/// guarantee no longer holds.
struct SearchProvenance {
  double mem_budget_mb = 0.0;       // 0 = search ran unbounded
  bool beam_degraded = false;       // open-list eviction happened
  long long evicted_states = 0;     // open entries dropped by the budget
  long long compactions = 0;        // arena compaction passes
  long long peak_tracked_bytes = 0;  // high-water of the budgeted footprint

  // Warm-start replanning (DESIGN.md §11). warm_repair means no search ran
  // at all: the plan is the previous plan's surviving suffix, revalidated
  // from scratch and accepted under the repair cost slack. warm_start means
  // a search ran but was seeded (arena corridor and/or carried verdict
  // cache) — its result is identical to a cold search, only faster.
  bool warm_start = false;
  bool warm_repair = false;
  long long warm_seeded_nodes = 0;  // arena nodes seeded from the suffix
  long long sat_carried = 0;        // carried verdict-cache entries adopted
};

/// Publishes one run's stats into the global obs registry (no-op while
/// metrics are disabled): planner.* and evaluator.* counters, the
/// planner.frontier_peak gauge, and a planner.wall_seconds histogram
/// sample. Called from every planner's finish path so counter totals are
/// invariant under PlannerOptions::num_threads (the evaluation counts are
/// logical — what the serial search does — not per-worker physical work).
void publish_planner_metrics(const std::string& planner,
                             const PlannerStats& stats,
                             const SearchProvenance* provenance = nullptr);

/// One A* expansion, recorded when PlannerOptions::record_trace is set —
/// the Figure 6 search-process view: which state was popped, its priority
/// decomposition, and whether it ended up on the returned plan.
struct TraceEntry {
  std::vector<std::int32_t> counts;
  std::int32_t last_type = -1;
  double g = 0.0;
  double h = 0.0;
  bool on_final_path = false;
};

struct Plan {
  bool found = false;
  std::string failure;  // reason when !found ("timeout", "infeasible", ...)
  std::string planner;  // which planner produced it
  std::vector<PlannedAction> actions;
  double cost = 0.0;
  PlannerStats stats;
  SearchProvenance provenance;
  /// Non-empty only when the search ran with record_trace (A* planner).
  std::vector<TraceEntry> trace;

  /// Groups consecutive same-type actions into phases.
  std::vector<Phase> phases() const;

  /// Recomputes the cost of `actions` under alpha (cross-check for tests).
  double recompute_cost(double alpha) const;
};

}  // namespace klotski::core
