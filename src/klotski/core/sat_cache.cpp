#include "klotski/core/sat_cache.h"

namespace klotski::core {

std::size_t SatCache::approx_memory_bytes() const {
  std::size_t bytes = table_.bucket_count() * sizeof(void*);
  for (const auto& [key, value] : table_) {
    (void)value;
    bytes += sizeof(std::int32_t) * key.capacity() + 3 * sizeof(void*) + 8;
  }
  return bytes;
}

}  // namespace klotski::core
