#include "klotski/core/sat_cache.h"

#include <cstring>

#include "klotski/obs/metrics.h"

namespace klotski::core {

namespace {
constexpr std::size_t kInitialSlots = 64;
}

SatCache::Slot* SatCache::find(Gen& gen, const std::int32_t* counts,
                               std::size_t n, std::uint64_t hash) {
  if (gen.slots.empty()) return nullptr;
  for (std::size_t i = hash & gen.mask;; i = (i + 1) & gen.mask) {
    Slot& s = gen.slots[i];
    if (s.state == 0) return nullptr;
    if (s.state == 1 && s.hash == hash && s.key_len == n &&
        std::memcmp(gen.keys.data() + s.key_pos, counts,
                    n * sizeof(std::int32_t)) == 0) {
      return &s;
    }
  }
}

void SatCache::grow(Gen& gen) {
  std::vector<Slot> old = std::move(gen.slots);
  gen.slots.assign(old.empty() ? kInitialSlots : old.size() * 2, Slot{});
  gen.mask = gen.slots.size() - 1;
  for (const Slot& s : old) {
    if (s.state != 1) continue;
    for (std::size_t i = s.hash & gen.mask;; i = (i + 1) & gen.mask) {
      if (gen.slots[i].state == 0) {
        gen.slots[i] = s;
        break;
      }
    }
  }
}

void SatCache::rotate() {
  const auto dropped = static_cast<long long>(old_.size);
  if (dropped > 0) {
    evictions_ += dropped;
    if (obs::metrics_enabled()) {
      obs::Registry::global()
          .counter("evaluator.sat_cache_evictions")
          .inc(dropped);
    }
  }
  old_ = std::move(cur_);
  cur_ = Gen{};
}

void SatCache::insert_current(const std::int32_t* counts, std::size_t n,
                              std::uint64_t hash, bool satisfiable) {
  if (cur_.size >= max_entries_) rotate();
  // Load factor cap 7/10; tombstones never occur in cur_ (promotion only
  // tombstones old_), so live entries alone drive the occupancy.
  if (cur_.slots.empty() || (cur_.size + 1) * 10 >= cur_.slots.size() * 7) {
    grow(cur_);
  }
  for (std::size_t i = hash & cur_.mask;; i = (i + 1) & cur_.mask) {
    Slot& s = cur_.slots[i];
    if (s.state != 0) continue;
    s.hash = hash;
    s.key_pos = static_cast<std::uint32_t>(cur_.keys.size());
    s.key_len = static_cast<std::uint16_t>(n);
    s.state = 1;
    s.verdict = satisfiable ? 1 : 0;
    cur_.keys.insert(cur_.keys.end(), counts, counts + n);
    ++cur_.size;
    return;
  }
}

std::optional<bool> SatCache::lookup(const std::int32_t* counts,
                                     std::size_t n, std::uint64_t hash) {
  if (Slot* s = find(cur_, counts, n, hash)) return s->verdict != 0;
  if (Slot* s = find(old_, counts, n, hash)) {
    // Second chance: promote into the current generation so entries in
    // active use survive the next rotation.
    const bool verdict = s->verdict != 0;
    s->state = 2;
    --old_.size;
    insert_current(counts, n, hash, verdict);
    return verdict;
  }
  return std::nullopt;
}

void SatCache::store(const std::int32_t* counts, std::size_t n,
                     std::uint64_t hash, bool satisfiable) {
  // The verdict of a topology never changes, so a duplicate store is a
  // no-op rather than an overwrite (first store wins).
  if (find(cur_, counts, n, hash) != nullptr) return;
  if (find(old_, counts, n, hash) != nullptr) return;
  insert_current(counts, n, hash, satisfiable);
}

void SatCache::clear() {
  cur_ = Gen{};
  old_ = Gen{};
}

SatCache SatCache::carried(const std::int32_t* delta, std::size_t n,
                           bool keep_sat, bool keep_unsat) const {
  SatCache out;
  out.max_entries_ = max_entries_;
  if (!keep_sat && !keep_unsat) return out;
  std::vector<std::int32_t> shifted(n);
  const auto carry_gen = [&](const Gen& gen) {
    for (const Slot& s : gen.slots) {
      if (s.state != 1 || s.key_len != n) continue;
      const bool verdict = s.verdict != 0;
      if (verdict ? !keep_sat : !keep_unsat) continue;
      bool in_range = true;
      for (std::size_t i = 0; i < n; ++i) {
        shifted[i] = gen.keys[s.key_pos + i] - delta[i];
        if (shifted[i] < 0) {
          in_range = false;
          break;
        }
      }
      if (!in_range) continue;
      // Keys are unique across both generations (store() checks both and
      // promotion tombstones the old copy) and the shift is injective, so a
      // plain insert suffices.
      out.insert_current(shifted.data(), n,
                         StateHasher::hash(shifted.data(), n), verdict);
    }
  };
  carry_gen(cur_);
  carry_gen(old_);
  return out;
}

std::size_t SatCache::approx_memory_bytes() const {
  const auto gen_bytes = [](const Gen& gen) {
    return gen.slots.capacity() * sizeof(Slot) +
           gen.keys.capacity() * sizeof(std::int32_t);
  };
  return gen_bytes(cur_) + gen_bytes(old_);
}

}  // namespace klotski::core
