// The Klotski-A* search planner (§4.4, Algorithm 2).
//
// States are (compact representation V, last action type). The priority is
// f(n) = g(n) + h(n) with the domain-specific admissible heuristic of the
// cost model; ties are broken toward states with more finished actions
// (closer to the target). The planner returns as soon as the target state
// is popped, which is why it typically visits far fewer states than the DP
// planner (Figure 7).
#pragma once

#include "klotski/core/planner.h"

namespace klotski::core {

class AStarPlanner : public Planner {
 public:
  std::string name() const override { return "Klotski-A*"; }

  Plan plan(migration::MigrationTask& task,
            constraints::CompositeChecker& checker,
            const PlannerOptions& options) override;
};

}  // namespace klotski::core
