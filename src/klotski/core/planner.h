// Planner interface shared by Klotski-A*, Klotski-DP and the baselines.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "klotski/constraints/composite.h"
#include "klotski/core/plan.h"
#include "klotski/core/sat_cache.h"
#include "klotski/migration/task.h"

namespace klotski::core {

/// Builds a fresh constraint stack bound to `task`. ParallelEvaluator calls
/// this once per worker thread with a worker-private task whose topology is
/// a private clone, so the returned composite (plus whatever it references —
/// routers, demand sets) must be built on that task, never on shared state.
/// The shared_ptr keeps any auxiliary objects alive (aliasing constructor;
/// see pipeline::make_standard_checker_factory).
using CheckerFactory = std::function<std::shared_ptr<constraints::CompositeChecker>(
    migration::MigrationTask& task)>;

/// Warm-start input for re-planning (pipeline/replan.cpp, DESIGN.md §11):
/// state salvaged from the previous planning epoch. Both members are pure
/// accelerators — a warm search returns the same plan a cold one would,
/// only faster — which is what lets the chaos resume oracle hold across
/// warm runs.
struct WarmStart {
  /// The surviving suffix of the previous plan, rebased into the new task's
  /// coordinates (per-type block indices renumbered from zero). The A*
  /// planner replays it into the search arena so the old plan's corridor
  /// starts on the open list; actions are validated at type boundaries
  /// during seeding and the replay stops at the first infeasibility — seeds
  /// are hints, never commitments.
  std::vector<PlannedAction> seed_actions;
  /// Verdict cache shared with (or carried from) the caller; adopted by the
  /// planner's evaluator, so it is both pre-seeded input and harvestable
  /// output. Carried entries must be provably still valid (the caller owns
  /// the invalidation rules — see SatCache::carried). nullptr = none.
  std::shared_ptr<SatCache> sat_cache;
};

struct PlannerOptions {
  /// Cost-function alpha (§5); 0 recovers Eq. 1.
  double alpha = 0.0;
  /// OPEX weights per action type (§7.2); empty = every type costs 1.
  std::vector<double> type_weights;
  /// Efficient satisfiability checking (§4.2); false = "w/o ESC" ablation.
  bool use_satisfiability_cache = true;
  /// A* priority function (§4.4); false degrades the A* planner to
  /// uniform-cost search, the "w/o A*" ablation.
  bool use_astar_heuristic = true;
  /// Use Eq. 9 exactly as printed in the paper, which can overestimate the
  /// cost-to-go and lose the optimality guarantee. For the heuristic
  /// ablation bench only.
  bool use_paper_literal_heuristic = false;
  /// Record every A* expansion into Plan::trace (the Figure 6 search
  /// process). Costs memory proportional to visited states — for
  /// inspection and teaching, not production planning.
  bool record_trace = false;
  /// Planning budget in wall seconds; 0 = unlimited (the paper capped
  /// baselines at 24 h).
  double deadline_seconds = 0.0;
  /// Safety valve for the exhaustive planners: give up (found = false,
  /// failure = "state space too large") beyond this many compact states.
  long long max_states = 200'000'000;
  /// Memory budget for the search structures (node arena, dedup table,
  /// open list, satisfiability cache) in MB; 0 = unbounded. When the
  /// tracked footprint exceeds the budget, the A* planner evicts the worst
  /// half of the open list and compacts the arena — degrading to beam
  /// search instead of OOMing. The degradation (and the loss of the
  /// optimality guarantee) is recorded in Plan::provenance. The baseline
  /// process footprint (topology, demands, routers) is outside the budget.
  double mem_budget_mb = 0.0;
  /// Per-generation entry cap for the satisfiability cache; 0 = the
  /// SatCache default (1M entries/generation). mem_budget_mb derives a
  /// tighter cap automatically when this is unset.
  std::size_t sat_cache_max_entries = 0;
  /// Worker threads for batched feasibility evaluation (DP inner loop, A*
  /// successor prefetch). 1 = serial, bit-identical to the pre-threading
  /// planners. Values > 1 require checker_factory.
  int num_threads = 1;
  /// Worker constraint-stack builder; ignored when num_threads <= 1.
  CheckerFactory checker_factory;
  /// Warm-start state from a previous planning epoch; nullptr = cold start.
  /// Not owned; must outlive the plan() call.
  const WarmStart* warm = nullptr;
};

class Planner {
 public:
  virtual ~Planner() = default;

  virtual std::string name() const = 0;

  /// Computes a migration plan. The task's topology is mutated during the
  /// search and restored to the original state before returning.
  virtual Plan plan(migration::MigrationTask& task,
                    constraints::CompositeChecker& checker,
                    const PlannerOptions& options) = 0;
};

}  // namespace klotski::core
