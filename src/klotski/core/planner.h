// Planner interface shared by Klotski-A*, Klotski-DP and the baselines.
#pragma once

#include <string>

#include "klotski/constraints/composite.h"
#include "klotski/core/plan.h"
#include "klotski/migration/task.h"

namespace klotski::core {

struct PlannerOptions {
  /// Cost-function alpha (§5); 0 recovers Eq. 1.
  double alpha = 0.0;
  /// OPEX weights per action type (§7.2); empty = every type costs 1.
  std::vector<double> type_weights;
  /// Efficient satisfiability checking (§4.2); false = "w/o ESC" ablation.
  bool use_satisfiability_cache = true;
  /// A* priority function (§4.4); false degrades the A* planner to
  /// uniform-cost search, the "w/o A*" ablation.
  bool use_astar_heuristic = true;
  /// Use Eq. 9 exactly as printed in the paper, which can overestimate the
  /// cost-to-go and lose the optimality guarantee. For the heuristic
  /// ablation bench only.
  bool use_paper_literal_heuristic = false;
  /// Record every A* expansion into Plan::trace (the Figure 6 search
  /// process). Costs memory proportional to visited states — for
  /// inspection and teaching, not production planning.
  bool record_trace = false;
  /// Planning budget in wall seconds; 0 = unlimited (the paper capped
  /// baselines at 24 h).
  double deadline_seconds = 0.0;
  /// Safety valve for the exhaustive planners: give up (found = false,
  /// failure = "state space too large") beyond this many compact states.
  long long max_states = 200'000'000;
};

class Planner {
 public:
  virtual ~Planner() = default;

  virtual std::string name() const = 0;

  /// Computes a migration plan. The task's topology is mutated during the
  /// search and restored to the original state before returning.
  virtual Plan plan(migration::MigrationTask& task,
                    constraints::CompositeChecker& checker,
                    const PlannerOptions& options) = 0;
};

}  // namespace klotski::core
