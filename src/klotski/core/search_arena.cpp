#include "klotski/core/search_arena.h"

#include <cstring>

namespace klotski::core {

SearchArena::SearchArena(std::int32_t num_types)
    : num_types_(num_types),
      counts_(static_cast<std::size_t>(num_types)) {}

std::uint32_t SearchArena::push_root(const std::int32_t* counts,
                                     std::uint64_t hash) {
  const std::size_t i = counts_.push_row(counts);
  last_.push_back(-1);
  parent_.push_back(kNoNode);
  g_.push_back(0.0);
  hash_.push_back(hash);
  std::int32_t total = 0;
  for (std::int32_t t = 0; t < num_types_; ++t) {
    total += counts[static_cast<std::size_t>(t)];
  }
  finished_.push_back(total);
  return static_cast<std::uint32_t>(i);
}

std::uint32_t SearchArena::push_child(std::uint32_t parent, std::int32_t type,
                                      double g) {
  const std::size_t i = counts_.push_row_uninit();
  std::int32_t* row = counts_.row(i);
  const std::int32_t* prow = counts_.row(parent);
  std::memcpy(row, prow, static_cast<std::size_t>(num_types_) *
                             sizeof(std::int32_t));
  const std::int32_t c = row[static_cast<std::size_t>(type)]++;
  last_.push_back(type);
  parent_.push_back(parent);
  g_.push_back(g);
  hash_.push_back(StateHasher::update(hash_[parent], type, c, c + 1));
  finished_.push_back(finished_[parent] + 1);
  return static_cast<std::uint32_t>(i);
}

std::size_t SearchArena::allocated_bytes() const {
  return counts_.allocated_bytes() + last_.allocated_bytes() +
         parent_.allocated_bytes() + g_.allocated_bytes() +
         hash_.allocated_bytes() + finished_.allocated_bytes();
}

void SearchArena::compact(std::vector<std::uint8_t>& live,
                          std::vector<std::uint32_t>& remap) {
  const std::size_t n = size();
  // Close the mark set over parent chains; parents precede children, so a
  // single descending pass reaches every ancestor.
  for (std::size_t i = n; i-- > 0;) {
    if (live[i] && parent_[i] != kNoNode) live[parent_[i]] = 1;
  }
  remap.assign(n, kNoNode);
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<std::uint32_t>(out);
    if (out != i) {
      std::memcpy(counts_.row(out), counts_.row(i),
                  static_cast<std::size_t>(num_types_) * sizeof(std::int32_t));
      last_[out] = last_[i];
      parent_[out] = parent_[i] == kNoNode ? kNoNode : remap[parent_[i]];
      g_[out] = g_[i];
      hash_[out] = hash_[i];
      finished_[out] = finished_[i];
    } else if (parent_[i] != kNoNode) {
      parent_[out] = remap[parent_[i]];
    }
    ++out;
  }
  counts_.truncate(out);
  last_.truncate(out);
  parent_.truncate(out);
  g_.truncate(out);
  hash_.truncate(out);
  finished_.truncate(out);
}

DedupTable::DedupTable(const SearchArena& arena) : arena_(arena) {
  slots_.resize(1024);
  mask_ = slots_.size() - 1;
}

bool DedupTable::slot_matches(const Slot& s, std::uint64_t state_hash,
                              const std::int32_t* counts,
                              std::int32_t last) const {
  if (s.hash != state_hash) return false;
  if (arena_.last(s.node) != last) return false;
  return std::memcmp(arena_.counts(s.node), counts,
                     static_cast<std::size_t>(arena_.num_types()) *
                         sizeof(std::int32_t)) == 0;
}

DedupTable::View DedupTable::find(std::uint64_t state_hash,
                                  const std::int32_t* counts,
                                  std::int32_t last) const {
  for (std::size_t i = state_hash & mask_;; i = (i + 1) & mask_) {
    const Slot& s = slots_[i];
    if (s.node == SearchArena::kNoNode) return View{};
    if (slot_matches(s, state_hash, counts, last)) return View{true, s.g};
  }
}

void DedupTable::upsert(std::uint64_t state_hash, std::uint32_t node,
                        double g) {
  if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
  for (std::size_t i = state_hash & mask_;; i = (i + 1) & mask_) {
    Slot& s = slots_[i];
    if (s.node == SearchArena::kNoNode) {
      s = Slot{state_hash, node, g};
      ++size_;
      return;
    }
    if (slot_matches(s, state_hash, arena_.counts(node), arena_.last(node))) {
      s.node = node;
      s.g = g;
      return;
    }
  }
}

void DedupTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.node == SearchArena::kNoNode) continue;
    for (std::size_t i = s.hash & mask_;; i = (i + 1) & mask_) {
      if (slots_[i].node == SearchArena::kNoNode) {
        slots_[i] = s;
        break;
      }
    }
  }
}

void DedupTable::rebuild() {
  std::size_t cap = slots_.size();
  while (cap > 1024 && arena_.size() * 10 < (cap / 2) * 7) cap /= 2;
  slots_.assign(cap, Slot{});
  slots_.shrink_to_fit();
  mask_ = cap - 1;
  size_ = 0;
  for (std::uint32_t n = 0; n < arena_.size(); ++n) {
    upsert(arena_.state_hash(n), n, arena_.g(n));
  }
}

}  // namespace klotski::core
