// Operational cost model (Eq. 1, generalized in §5, extended for OPEX §7.2).
//
// Operating a run of x consecutive same-type actions costs
// f_cost(x) = w_a * (1 + alpha * (x - 1)): the first action of a run costs
// the type's base cost w_a (the crew switches context), each subsequent
// same-type action costs alpha * w_a (operators work in parallel with small
// marginal cost). alpha = 0 and unit weights recover Eq. 1 exactly:
// cost = number of action-type changes + 1.
//
// Per-type weights are the OPEX extension of §7.2 ("different sequences of
// steps could have different costs in terms of human efficiency ... we are
// adding a cost model to Klotski which can optimize for OPEX spending"):
// e.g. an HGRID drain needs a rewiring crew in two rooms while a circuit
// group drain is a single splice visit.
//
// The A* heuristic h(n) estimates the cost-to-go from the remaining action
// counts (Eq. 9). The paper states h as the sum over remaining types of
// 1 + alpha*(N_a - 1); applied verbatim this can overestimate when the
// *current* run's type still has remaining actions (continuing the run
// costs only alpha*w per action), so the default heuristic charges the last
// type alpha * w * N_last instead — never more than the true cost-to-go,
// keeping A* optimal. The literal form is kept available for the ablation
// bench that demonstrates the difference.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/core/compact_state.h"

namespace klotski::core {

class CostModel {
 public:
  /// `type_weights` gives w_a per action type; empty means all 1.0.
  explicit CostModel(double alpha = 0.0,
                     std::vector<double> type_weights = {});

  double alpha() const { return alpha_; }
  double weight(std::int32_t type) const {
    return type_weights_.empty()
               ? 1.0
               : type_weights_[static_cast<std::size_t>(type)];
  }

  /// Marginal cost of appending an action of `next` after `last`
  /// (last == -1 for the first action of a plan).
  double transition_cost(std::int32_t last, std::int32_t next) const {
    const double w = weight(next);
    return last == next ? alpha_ * w : w;
  }

  /// Total cost of a full action-type sequence.
  double sequence_cost(const std::vector<std::int32_t>& types) const;

  /// Admissible, consistent cost-to-go lower bound given remaining counts.
  double heuristic(const CountVector& counts, const CountVector& target,
                   std::int32_t last_type) const {
    return heuristic(counts.data(), target, last_type);
  }
  /// Span form for the SoA planners (counts must have target.size()
  /// entries).
  double heuristic(const std::int32_t* counts, const CountVector& target,
                   std::int32_t last_type) const;

  /// The paper's Eq. 9 applied literally: sums w*(1 + alpha*(N_a-1)) over
  /// every type with remaining actions, *including* the current run's type.
  /// Overestimates in that case — kept for the heuristic ablation, where it
  /// demonstrably costs A* its optimality guarantee.
  double heuristic_paper_literal(const CountVector& counts,
                                 const CountVector& target) const {
    return heuristic_paper_literal(counts.data(), target);
  }
  double heuristic_paper_literal(const std::int32_t* counts,
                                 const CountVector& target) const;

 private:
  double alpha_;
  std::vector<double> type_weights_;
};

}  // namespace klotski::core
