// Struct-of-arrays storage for planner search nodes, plus the open-address
// duplicate-detection table that replaces the unordered_map keyed on full
// SearchState values.
//
// A node is a 32-bit index into parallel columns (counts row, last type,
// parent, g, count hash, finished total) owned by a per-search arena built
// on util::PodPool / util::StridedPool chunks. Pushing a successor touches
// no allocator in the steady state and copies |V| ints once — the per-node
// std::vector allocations (and their destructor sweeps) of the old
// representation are gone, and the arena can report its exact footprint for
// the --mem-budget-mb accounting.
//
// The arena also supports *compaction* for the budgeted search: given a
// liveness mark over nodes (the open list), it closes the marks over parent
// chains (a parent always has a smaller index than its children, so one
// descending pass suffices), slides live rows down in place, frees the tail
// chunks, and reports the old->new index remap so queue entries and traces
// can be rewritten.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/core/compact_state.h"
#include "klotski/util/arena.h"

namespace klotski::core {

class SearchArena {
 public:
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  explicit SearchArena(std::int32_t num_types);

  std::size_t size() const { return last_.size(); }
  std::int32_t num_types() const { return num_types_; }

  /// Appends the root node (no parent, g = 0, last = -1).
  std::uint32_t push_root(const std::int32_t* counts, std::uint64_t hash);

  /// Appends the successor of `parent` that applies one `type` action:
  /// counts = parent counts with [type] incremented, hash updated in O(1).
  std::uint32_t push_child(std::uint32_t parent, std::int32_t type, double g);

  const std::int32_t* counts(std::uint32_t n) const { return counts_.row(n); }
  std::int32_t last(std::uint32_t n) const { return last_[n]; }
  std::uint32_t parent(std::uint32_t n) const { return parent_[n]; }
  double g(std::uint32_t n) const { return g_[n]; }
  std::uint64_t hash(std::uint32_t n) const { return hash_[n]; }
  std::int32_t finished(std::uint32_t n) const { return finished_[n]; }

  /// Search-state dedup hash of node n: count hash folded with last type.
  std::uint64_t state_hash(std::uint32_t n) const {
    return StateHasher::with_last(hash_[n], last_[n]);
  }

  std::size_t allocated_bytes() const;

  /// Compacts the arena to the nodes marked in `live` (sized size()) plus
  /// every ancestor of a marked node, preserving index order. On return
  /// `remap` (resized to the old size) maps old indices to new ones, with
  /// kNoNode for dropped nodes, and `live` reflects the closed mark set.
  void compact(std::vector<std::uint8_t>& live,
               std::vector<std::uint32_t>& remap);

 private:
  std::int32_t num_types_;
  util::StridedPool<std::int32_t> counts_;
  util::PodPool<std::int32_t> last_;
  util::PodPool<std::uint32_t> parent_;
  util::PodPool<double> g_;
  util::PodPool<std::uint64_t> hash_;
  util::PodPool<std::int32_t> finished_;
};

/// Open-addressing map from search state (counts, last) to its best-known
/// node and g. Keys live in the arena: an entry stores only (hash, node, g)
/// and equality re-checks the arena row on the rare full-hash collision, so
/// the table itself is 24 bytes per entry regardless of |V|.
class DedupTable {
 public:
  explicit DedupTable(const SearchArena& arena);

  struct View {
    bool found = false;
    double g = 0.0;
  };

  /// Looks up (counts, last) by its precomputed state hash.
  View find(std::uint64_t state_hash, const std::int32_t* counts,
            std::int32_t last) const;

  /// Inserts or overwrites the entry for the state of `node`. Callers only
  /// upsert on strict improvement, so overwrite == "new best".
  void upsert(std::uint64_t state_hash, std::uint32_t node, double g);

  std::size_t size() const { return size_; }
  std::size_t allocated_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

  /// Rebuilds the table from the (compacted) arena: every node re-registers
  /// in index order. Later nodes of the same state always carry a strictly
  /// better g (they were only pushed on improvement), so last-wins keeps
  /// the best entry.
  void rebuild();

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t node = SearchArena::kNoNode;  // kNoNode = empty slot
    double g = 0.0;
  };

  bool slot_matches(const Slot& s, std::uint64_t state_hash,
                    const std::int32_t* counts, std::int32_t last) const;
  void grow();

  const SearchArena& arena_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace klotski::core
