// Klotski-A* (§4.4) over the struct-of-arrays search arena.
//
// Nodes are 32-bit indices into SearchArena columns; duplicate detection
// goes through DedupTable keyed on the incremental Zobrist state hash, so
// the per-expansion work is a handful of O(1) probes plus one |V|-int row
// copy per accepted successor — no per-node heap allocation anywhere.
//
// With PlannerOptions::mem_budget_mb set, the search tracks its exact
// footprint (arena + dedup table + open list + satisfiability cache). On
// exceeding the budget it evicts the worst half of the open list (keeping
// at least kMinBeamWidth entries — this is the degradation to beam search),
// compacts the arena to the surviving nodes plus their parent chains, and
// rebuilds the dedup table from the survivors. Closed ancestors keep their
// dedup entries through the rebuild, which caps re-expansion: a
// re-generated state is only re-opened on a strictly better g. Without a
// budget the search is bit-identical to the reference implementation
// (tests/core/soa_equivalence_test.cpp holds the old representation to
// that claim).
#include "klotski/core/astar_planner.h"

#include <algorithm>
#include <vector>

#include "klotski/core/cost_model.h"
#include "klotski/core/parallel_evaluator.h"
#include "klotski/core/search_arena.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/obs/trace.h"
#include "klotski/util/timer.h"

namespace klotski::core {

namespace {

struct QueueEntry {
  double f = 0.0;
  std::int32_t finished = 0;  // secondary priority: more finished first
  long long seq = 0;          // FIFO tie break for determinism
  std::uint32_t node = SearchArena::kNoNode;
};

struct QueueCompare {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.f != b.f) return a.f > b.f;                       // min f
    if (a.finished != b.finished) return a.finished < b.finished;  // max done
    return a.seq > b.seq;                                   // FIFO
  }
};

// The open list: an explicit binary heap (same push_heap/pop_heap protocol
// std::priority_queue uses, so the pop order is unchanged) whose storage is
// accessible for budget eviction.
class OpenList {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t allocated_bytes() const {
    return heap_.capacity() * sizeof(QueueEntry);
  }

  void push(const QueueEntry& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), QueueCompare{});
  }

  QueueEntry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), QueueCompare{});
    const QueueEntry e = heap_.back();
    heap_.pop_back();
    return e;
  }

  /// Keeps the `keep` best entries (by the queue order), drops the rest,
  /// and restores the heap property. Returns the number dropped.
  std::size_t evict_worst(std::size_t keep) {
    if (heap_.size() <= keep) return 0;
    // QueueCompare is a greater-than for the heap; best-first ascending
    // order is its negation.
    std::nth_element(heap_.begin(),
                     heap_.begin() + static_cast<std::ptrdiff_t>(keep),
                     heap_.end(), [](const QueueEntry& a, const QueueEntry& b) {
                       return QueueCompare{}(b, a);
                     });
    const std::size_t dropped = heap_.size() - keep;
    heap_.resize(keep);
    heap_.shrink_to_fit();
    std::make_heap(heap_.begin(), heap_.end(), QueueCompare{});
    return dropped;
  }

  std::vector<QueueEntry>& entries() { return heap_; }

 private:
  std::vector<QueueEntry> heap_;
};

// Smallest open list the budget may evict down to; below this the search
// would degenerate to near-greedy and eviction overhead would dominate.
constexpr std::size_t kMinBeamWidth = 1024;

}  // namespace

Plan AStarPlanner::plan(migration::MigrationTask& task,
                        constraints::CompositeChecker& checker,
                        const PlannerOptions& options) {
  util::Stopwatch stopwatch;
  obs::Span span("plan/astar");
  const util::Deadline deadline =
      options.deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.deadline_seconds)
          : util::Deadline::unlimited();

  Plan plan;
  plan.planner = name();

  StateEvaluator evaluator(task, checker, options.use_satisfiability_cache);
  const CountVector& target = evaluator.target();
  const auto num_types = static_cast<std::int32_t>(target.size());
  const CostModel cost(options.alpha, options.type_weights);

  // Warm start, part 1: adopt the shared verdict cache before the first
  // evaluation. Carried entries hold verdicts identical to a fresh check
  // (the caller's invalidation rules guarantee it), so adoption changes
  // latency, never the plan.
  if (options.warm != nullptr && options.use_satisfiability_cache &&
      options.warm->sat_cache != nullptr) {
    plan.provenance.sat_carried =
        static_cast<long long>(options.warm->sat_cache->size());
    // An empty shared cache is a harvest vehicle, not a warm start.
    if (plan.provenance.sat_carried > 0) plan.provenance.warm_start = true;
    evaluator.adopt_cache(options.warm->sat_cache);
  }

  const auto budget_bytes = static_cast<std::size_t>(
      options.mem_budget_mb > 0.0 ? options.mem_budget_mb * 1024.0 * 1024.0
                                  : 0.0);
  plan.provenance.mem_budget_mb = options.mem_budget_mb;
  if (options.sat_cache_max_entries > 0) {
    evaluator.set_cache_capacity(options.sat_cache_max_entries);
  } else if (budget_bytes > 0) {
    // Keep the verdict cache to roughly a quarter of the budget (entries
    // cost ~16 bytes of slot + 4|V| bytes of key across two generations).
    evaluator.set_cache_capacity(std::max<std::size_t>(
        1024, budget_bytes / (8 * (sizeof(std::int32_t) *
                                       static_cast<std::size_t>(num_types) +
                                   16))));
  }

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.sat_checks = evaluator.sat_checks();
    p.stats.cache_hits = evaluator.cache_hits();
    p.stats.evaluations = evaluator.evaluations();
    p.stats.delta_applies = evaluator.delta_applies();
    p.stats.full_replays = evaluator.full_replays();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    publish_planner_metrics(name(), p.stats, &p.provenance);
    return std::move(p);
  };

  // Demand/port constraints apply at action-type boundaries and at the end
  // of the plan (Eq. 4-6): a same-type run executes in parallel, so only
  // the topology at the end of the run must be safe. The original and
  // target topologies are always run boundaries.
  const CountVector origin(static_cast<std::size_t>(num_types), 0);
  if (!evaluator.feasible(origin)) {
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  if (origin == target) {  // nothing to do
    plan.found = true;
    return finish(std::move(plan));
  }
  if (!evaluator.feasible(target)) {
    plan.failure = "target topology violates constraints";
    return finish(std::move(plan));
  }
  const std::int32_t target_total = total_actions(target);

  SearchArena arena(num_types);
  const std::uint32_t root =
      arena.push_root(origin.data(), StateHasher::hash(origin));

  DedupTable table(arena);
  table.upsert(arena.state_hash(root), root, 0.0);

  OpenList open;
  long long seq = 0;
  open.push(QueueEntry{cost.heuristic(origin, target, -1), 0, seq++, root});

  // Total nodes ever pushed; monotone even across compactions, so the
  // max_states guard keeps its pre-arena meaning and also bounds budget-
  // induced re-expansion.
  long long total_pushed = 1;

  // Warm start, part 2: replay the surviving suffix of the previous plan as
  // an arena chain so the old plan's corridor starts on the open list. Each
  // seed action must target the next block of its type; a type change
  // closes a run, so the boundary state is checked for feasibility and the
  // replay stops at the first violation. Seeded entries carry true g values
  // and the admissible heuristic, so A* keeps its optimality guarantee —
  // the corridor only saves re-discovery work when it is (near-)right.
  if (options.warm != nullptr && !options.warm->seed_actions.empty()) {
    plan.provenance.warm_start = true;
    std::uint32_t at = root;
    std::int32_t at_last = -1;
    CountVector cur(origin);
    for (const PlannedAction& action : options.warm->seed_actions) {
      const std::int32_t a = action.type;
      if (a < 0 || a >= num_types) break;
      const auto ia = static_cast<std::size_t>(a);
      if (cur[ia] >= target[ia] || action.block_index != cur[ia]) break;
      if (a != at_last && at != root &&
          !evaluator.feasible(arena.counts(at), arena.hash(at))) {
        break;
      }
      const double g = arena.g(at) + cost.transition_cost(at_last, a);
      const std::uint32_t index = arena.push_child(at, a, g);
      ++total_pushed;
      ++cur[ia];
      table.upsert(arena.state_hash(index), index, g);
      double h = 0.0;
      if (options.use_astar_heuristic) {
        h = options.use_paper_literal_heuristic
                ? cost.heuristic_paper_literal(cur.data(), target)
                : cost.heuristic(cur.data(), target, a);
      }
      open.push(QueueEntry{g + h, arena.finished(index), seq++, index});
      ++plan.provenance.warm_seeded_nodes;
      at = index;
      at_last = a;
    }
  }

  // Expansion trace (Figure 6 view); parallel vector of node ids so the
  // final-path flag can be set during reconstruction. Compaction remaps the
  // ids (kNoNode for nodes that were dropped — they cannot be on the final
  // path, which only ever walks live parent chains).
  std::vector<std::uint32_t> trace_nodes;

  // Speculative prefetch (options.num_threads > 1): when a node is pushed,
  // its topology's feasibility will be wanted at its own expansion (the
  // boundary check below), so batch-evaluate freshly pushed successors on
  // worker clones and seed the satisfiability cache. Verdicts are pure
  // functions of the state, so the plan and its cost are identical to the
  // serial search; sat_checks/cache_hits bookkeeping differs (speculative
  // states may never be expanded). Needs the cache to transport verdicts,
  // hence disabled for the w/o-ESC ablation.
  std::unique_ptr<ParallelEvaluator> parallel_eval;
  if (options.num_threads > 1 && options.checker_factory &&
      options.use_satisfiability_cache) {
    parallel_eval = std::make_unique<ParallelEvaluator>(
        evaluator, options.checker_factory, options.num_threads);
  }
  StateBatch prefetch_batch(static_cast<std::size_t>(num_types));

  // Budget bookkeeping. Compaction scratch lives outside the loop so the
  // enforcement passes reuse it.
  std::vector<std::uint8_t> live;
  std::vector<std::uint32_t> remap;
  std::size_t arena_size_at_compaction = 0;

  const auto tracked_bytes = [&] {
    return arena.allocated_bytes() + table.allocated_bytes() +
           open.allocated_bytes() + evaluator.cache_bytes();
  };

  const auto enforce_budget = [&] {
    const std::size_t keep =
        std::max(kMinBeamWidth, open.size() - open.size() / 2);
    const std::size_t dropped = open.evict_worst(keep);
    if (dropped > 0) {
      plan.provenance.beam_degraded = true;
      plan.provenance.evicted_states += static_cast<long long>(dropped);
    }
    live.assign(arena.size(), 0);
    for (const QueueEntry& e : open.entries()) live[e.node] = 1;
    arena.compact(live, remap);
    for (QueueEntry& e : open.entries()) e.node = remap[e.node];
    for (std::uint32_t& t : trace_nodes) {
      t = t == SearchArena::kNoNode ? t : remap[t];
    }
    table.rebuild();
    ++plan.provenance.compactions;
    arena_size_at_compaction = arena.size();
  };

  CountVector child(static_cast<std::size_t>(num_types));

  while (!open.empty()) {
    if (plan.stats.visited_states % 64 == 0) {
      if (deadline.expired()) {
        plan.failure = "timeout";
        return finish(std::move(plan));
      }
      if (budget_bytes > 0) {
        const std::size_t bytes = tracked_bytes();
        if (static_cast<long long>(bytes) >
            plan.provenance.peak_tracked_bytes) {
          plan.provenance.peak_tracked_bytes = static_cast<long long>(bytes);
        }
        // Only enforce once the arena has grown meaningfully since the last
        // compaction; otherwise a budget just above the live-set size would
        // compact on every check.
        if (bytes > budget_bytes &&
            arena.size() > arena_size_at_compaction + kMinBeamWidth) {
          enforce_budget();
        }
      }
    }

    if (static_cast<long long>(open.size()) > plan.stats.frontier_peak) {
      plan.stats.frontier_peak = static_cast<long long>(open.size());
    }
    const QueueEntry entry = open.pop();
    const std::uint32_t node = entry.node;
    const std::int32_t* node_counts = arena.counts(node);
    const std::int32_t node_last = arena.last(node);
    const double node_g = arena.g(node);

    // Skip stale queue entries (a cheaper path to this state was found
    // after this entry was pushed).
    const DedupTable::View best =
        table.find(arena.state_hash(node), node_counts, node_last);
    if (!best.found || node_g > best.g) continue;

    ++plan.stats.visited_states;

    if (options.record_trace) {
      TraceEntry t;
      t.counts.assign(node_counts, node_counts + num_types);
      t.last_type = node_last;
      t.g = node_g;
      t.h = cost.heuristic(node_counts, target, node_last);
      plan.trace.push_back(std::move(t));
      trace_nodes.push_back(node);
    }

    if (arena.finished(node) == target_total) {
      plan.found = true;
      plan.cost = node_g;
      // Reconstruct by walking the parent chain.
      std::vector<PlannedAction> reversed;
      std::vector<std::uint32_t> on_path;
      for (std::uint32_t at = node; at != SearchArena::kNoNode;
           at = arena.parent(at)) {
        on_path.push_back(at);
        if (arena.parent(at) != SearchArena::kNoNode) {
          const std::int32_t last = arena.last(at);
          reversed.push_back(PlannedAction{
              last, arena.counts(at)[static_cast<std::size_t>(last)] - 1});
        }
      }
      plan.actions.assign(reversed.rbegin(), reversed.rend());
      if (options.record_trace) {
        std::sort(on_path.begin(), on_path.end());
        for (std::size_t i = 0; i < trace_nodes.size(); ++i) {
          plan.trace[i].on_final_path =
              trace_nodes[i] != SearchArena::kNoNode &&
              std::binary_search(on_path.begin(), on_path.end(),
                                 trace_nodes[i]);
        }
      }
      return finish(std::move(plan));
    }

    // Changing action type closes the current run, so the current topology
    // must satisfy the constraints before any cross-type expansion.
    // Evaluated lazily, and only once the successor is known to be
    // non-dominated: most cross-type candidates on a cost plateau are
    // duplicates of already-reached states and never need the check.
    bool boundary_known = false;
    bool boundary_ok = false;
    if (parallel_eval != nullptr) prefetch_batch.clear();

    for (std::int32_t a = 0; a < num_types; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (node_counts[ia] >= target[ia]) continue;
      ++plan.stats.generated_states;

      std::copy(node_counts, node_counts + num_types, child.begin());
      ++child[ia];
      const double g = node_g + cost.transition_cost(node_last, a);
      const std::uint64_t child_hash =
          StateHasher::update(arena.hash(node), a, node_counts[ia],
                              node_counts[ia] + 1);
      const std::uint64_t child_state_hash =
          StateHasher::with_last(child_hash, a);

      const DedupTable::View found =
          table.find(child_state_hash, child.data(), a);
      if (found.found && found.g <= g) continue;

      if (a != node_last) {
        if (!boundary_known) {
          boundary_ok = evaluator.feasible(node_counts, arena.hash(node));
          boundary_known = true;
        }
        if (!boundary_ok) continue;
      }

      const std::uint32_t index = arena.push_child(node, a, g);
      ++total_pushed;
      table.upsert(child_state_hash, index, g);

      double h = 0.0;
      if (options.use_astar_heuristic) {
        h = options.use_paper_literal_heuristic
                ? cost.heuristic_paper_literal(child.data(), target)
                : cost.heuristic(child.data(), target, a);
      }
      open.push(QueueEntry{g + h, arena.finished(index), seq++, index});
      if (parallel_eval != nullptr) {
        prefetch_batch.push(child.data(), child_hash);
      }
    }

    if (parallel_eval != nullptr && prefetch_batch.size() > 1) {
      parallel_eval->evaluate_batch(prefetch_batch);
    }

    if (total_pushed > options.max_states) {
      plan.failure = "state space too large";
      return finish(std::move(plan));
    }
  }

  plan.failure = "no feasible action sequence exists";
  return finish(std::move(plan));
}

}  // namespace klotski::core
