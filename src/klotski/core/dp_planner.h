// The Klotski-DP planner (§4.3, Algorithm 1, Theorem 1).
//
// Dynamic programming over the compact topology representation: state
// f(V, a) is the minimum cost of reaching topology V with last action type
// a. States are propagated in ascending lexicographic index order, which
// dominates the paper's "ascending total actions" order (every predecessor
// V - e_a has a strictly smaller flat index). The DP visits every
// intermediate topology, which is why A* — returning at the first pop of
// the target — is 1.7-3.8x faster in the paper's measurements.
#pragma once

#include "klotski/core/planner.h"

namespace klotski::core {

class DpPlanner : public Planner {
 public:
  std::string name() const override { return "Klotski-DP"; }

  Plan plan(migration::MigrationTask& task,
            constraints::CompositeChecker& checker,
            const PlannerOptions& options) override;
};

}  // namespace klotski::core
