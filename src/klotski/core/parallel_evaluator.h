// Batched feasibility evaluation across a worker thread pool.
//
// The satisfiability check — materialize a compact state, run the constraint
// stack — is a pure function of the count vector, so independent candidate
// states can be checked concurrently. Each worker owns a full private
// evaluation context (a topology clone, a task copy pointing at that clone,
// a constraint stack built by the planner's CheckerFactory, and a private
// StateEvaluator), so workers never synchronize during a batch; the only
// shared structure is a lock-free job cursor. The shared evaluator's
// satisfiability cache is consulted before dispatch and updated after the
// batch on the calling thread, so the cache itself needs no locking.
//
// Verdicts are returned to the caller (and merged into the shared cache when
// enabled), which lets the planners consume batch results exactly where the
// serial code would have called StateEvaluator::feasible — with identical
// verdicts, since every worker context materializes the same states and the
// checkers are pure (see checker.h).
//
// This pool parallelizes *across* candidate states; the ECMP router can
// additionally parallelize *within* one check (EcmpRouter::set_num_workers
// recomputes dirty demand groups concurrently). The two compose through the
// CheckerFactory: run_pipeline and klotski_plan divide the intra-check
// budget by num_threads when building the worker configs, so a machine runs
// ~num_threads * max(1, router_threads / num_threads) threads, not the
// product.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "klotski/core/planner.h"
#include "klotski/core/state_evaluator.h"

namespace klotski::core {

class ParallelEvaluator {
 public:
  /// Spawns `num_threads` workers, each with a private clone of the shared
  /// evaluator's task (topology copy included) and a constraint stack built
  /// by `factory`. num_threads <= 1 or a null factory spawns no workers;
  /// evaluate_batch then runs on the shared evaluator (serial semantics).
  ParallelEvaluator(StateEvaluator& shared, const CheckerFactory& factory,
                    int num_threads);
  ~ParallelEvaluator();

  ParallelEvaluator(const ParallelEvaluator&) = delete;
  ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

  bool parallel() const { return !threads_.empty(); }

  /// Evaluates feasibility of every count vector in `batch` (entries must
  /// be distinct) and returns verdicts aligned with it, valid until the
  /// next call. Entries already in the shared cache are answered from it
  /// without touching the shared stats — the planners only batch states the
  /// serial code would evaluate, keeping sat_checks identical. Freshly
  /// evaluated entries are stored into the shared cache (when enabled) and
  /// counted via StateEvaluator::absorb_external.
  const std::vector<std::uint8_t>& evaluate_batch(
      const std::vector<CountVector>& batch);

  /// Flat-batch form: count spans plus their precomputed StateHasher
  /// hashes, so the shared-cache probe and store never rehash V. The
  /// planners' hot paths fill one reused StateBatch per expansion.
  const std::vector<std::uint8_t>& evaluate_batch(const StateBatch& batch);

 private:
  struct WorkerContext {
    std::unique_ptr<topo::Topology> topo;
    std::unique_ptr<migration::MigrationTask> task;
    std::shared_ptr<constraints::CompositeChecker> checker;
    std::unique_ptr<StateEvaluator> evaluator;
  };

  void worker_loop(std::size_t widx);

  StateEvaluator& shared_;
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::vector<std::thread> threads_;

  // Batch state, valid for one generation. Workers claim jobs via next_;
  // the caller waits until every claimed job finished and every worker left
  // the drain loop (active_ == 0) before reusing the buffers.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int active_ = 0;
  std::size_t njobs_ = 0;
  std::atomic<std::size_t> next_{0};
  struct Job {
    const std::int32_t* counts;
    std::uint64_t hash;
  };
  std::vector<Job> pending_;                  // jobs (not in shared cache)
  std::vector<std::uint8_t> job_results_;     // aligned with pending_
  std::vector<std::size_t> pending_index_;    // job -> batch position
  std::vector<std::uint8_t> results_;         // aligned with batch
  std::unique_ptr<StateBatch> scratch_batch_;  // legacy-overload staging
};

}  // namespace klotski::core
