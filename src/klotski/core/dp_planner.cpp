#include "klotski/core/dp_planner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "klotski/core/cost_model.h"
#include "klotski/core/parallel_evaluator.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/obs/trace.h"
#include "klotski/util/timer.h"

namespace klotski::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Plan DpPlanner::plan(migration::MigrationTask& task,
                     constraints::CompositeChecker& checker,
                     const PlannerOptions& options) {
  util::Stopwatch stopwatch;
  obs::Span span("plan/dp");
  const util::Deadline deadline =
      options.deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.deadline_seconds)
          : util::Deadline::unlimited();

  Plan plan;
  plan.planner = name();

  StateEvaluator evaluator(task, checker, options.use_satisfiability_cache);
  const CountVector& target = evaluator.target();
  const auto num_types = static_cast<std::int32_t>(target.size());
  const CostModel cost(options.alpha, options.type_weights);

  // Warm start: adopt the shared verdict cache before the first evaluation
  // (the DP sweep visits every lattice cell regardless, so the arena-seed
  // half of WarmStart does not apply — only the carried verdicts do).
  if (options.warm != nullptr && options.use_satisfiability_cache &&
      options.warm->sat_cache != nullptr) {
    plan.provenance.sat_carried =
        static_cast<long long>(options.warm->sat_cache->size());
    // An empty shared cache is a harvest vehicle, not a warm start.
    if (plan.provenance.sat_carried > 0) plan.provenance.warm_start = true;
    evaluator.adopt_cache(options.warm->sat_cache);
  }

  // The DP table is dense and pre-sized, so the memory budget only governs
  // the satisfiability cache here; the A* planner owns open-list eviction.
  plan.provenance.mem_budget_mb = options.mem_budget_mb;
  if (options.sat_cache_max_entries > 0) {
    evaluator.set_cache_capacity(options.sat_cache_max_entries);
  } else if (options.mem_budget_mb > 0.0) {
    const auto budget_bytes = static_cast<std::size_t>(
        options.mem_budget_mb * 1024.0 * 1024.0);
    evaluator.set_cache_capacity(std::max<std::size_t>(
        1024, budget_bytes / (8 * (sizeof(std::int32_t) *
                                       static_cast<std::size_t>(num_types) +
                                   16))));
  }

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.sat_checks = evaluator.sat_checks();
    p.stats.cache_hits = evaluator.cache_hits();
    p.stats.evaluations = evaluator.evaluations();
    p.stats.delta_applies = evaluator.delta_applies();
    p.stats.full_replays = evaluator.full_replays();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    publish_planner_metrics(name(), p.stats, &p.provenance);
    return std::move(p);
  };

  // Boundary semantics (Eq. 4-6): constraints hold at the original state,
  // at every action-type change, and at the target.
  const CountVector origin(static_cast<std::size_t>(num_types), 0);
  if (!evaluator.feasible(origin)) {
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  if (origin == target) {
    plan.found = true;
    return finish(std::move(plan));
  }
  if (!evaluator.feasible(target)) {
    plan.failure = "target topology violates constraints";
    return finish(std::move(plan));
  }

  // Mixed-radix layout: flat index = sum(v_i * stride_i).
  // Unlike A*, the DP table is dense (num_states * |A| doubles), so cap the
  // state count to keep the table within a few hundred MB.
  const long long state_limit =
      std::min<long long>(options.max_states, 20'000'000);
  std::vector<long long> strides(static_cast<std::size_t>(num_types));
  long long num_states = 1;
  for (std::int32_t a = 0; a < num_types; ++a) {
    strides[static_cast<std::size_t>(a)] = num_states;
    num_states *= target[static_cast<std::size_t>(a)] + 1;
    if (num_states > state_limit) {
      plan.failure = "state space too large";
      return finish(std::move(plan));
    }
  }

  // f and the backtracking array g (Algorithm 1); parent = last action type
  // of the optimal predecessor, -2 = unset, -1 = the origin. A state is
  // *traversable* even when its topology violates constraints — it may sit
  // in the middle of a parallel same-type run — but an action-type change
  // may only happen at a state whose topology is safe.
  std::vector<double> f(static_cast<std::size_t>(num_states * num_types),
                        kInf);
  std::vector<std::int8_t> parent(
      static_cast<std::size_t>(num_states * num_types), -2);
  // 0 = infeasible, 1 = feasible, 2 = not yet evaluated.
  std::vector<std::uint8_t> safe(static_cast<std::size_t>(num_states), 2);
  safe[0] = 1;  // the origin was checked above

  // Batched evaluation (options.num_threads > 1): the boundary states an
  // index needs are known before its inner loop runs, so they can be
  // checked concurrently on worker clones. The batch below contains exactly
  // the states the serial lazy path would evaluate, so verdicts, sat-check
  // counts and the resulting plan are bit-identical to num_threads == 1.
  std::unique_ptr<ParallelEvaluator> parallel_eval;
  if (options.num_threads > 1 && options.checker_factory) {
    parallel_eval = std::make_unique<ParallelEvaluator>(
        evaluator, options.checker_factory, options.num_threads);
  }
  StateBatch batch(static_cast<std::size_t>(num_types));
  std::vector<long long> batch_pidx;

  CountVector counts(static_cast<std::size_t>(num_types), 0);
  CountVector scratch(static_cast<std::size_t>(num_types), 0);
  // The count hash rides the odometer: each digit change is one O(1)
  // StateHasher::update, so predecessor probes below never rehash V.
  std::uint64_t counts_hash = StateHasher::hash(counts);
  for (long long idx = 1; idx < num_states; ++idx) {
    // Advance the odometer to match idx.
    for (std::int32_t a = 0; a < num_types; ++a) {
      const std::int32_t before = counts[static_cast<std::size_t>(a)];
      if (++counts[static_cast<std::size_t>(a)] <=
          target[static_cast<std::size_t>(a)]) {
        counts_hash = StateHasher::update(counts_hash, a, before, before + 1);
        break;
      }
      counts[static_cast<std::size_t>(a)] = 0;
      counts_hash = StateHasher::update(counts_hash, a, before, 0);
    }

    if ((idx & 127) == 0 && deadline.expired()) {
      plan.failure = "timeout";
      return finish(std::move(plan));
    }
    ++plan.stats.visited_states;

    if (parallel_eval != nullptr) {
      // Collect the distinct predecessors whose safety this index will ask
      // for: pidx != origin, not yet evaluated, and some finite-cost entry
      // of a different type exists (the lazy trigger below). Distinctness
      // holds because strides of types with blocks are strictly increasing.
      batch.clear();
      batch_pidx.clear();
      for (std::int32_t a = 0; a < num_types; ++a) {
        if (counts[static_cast<std::size_t>(a)] == 0) continue;
        const long long pidx = idx - strides[static_cast<std::size_t>(a)];
        if (pidx == 0 || safe[static_cast<std::size_t>(pidx)] != 2) continue;
        bool needed = false;
        for (std::int32_t ap = 0; ap < num_types; ++ap) {
          if (ap != a &&
              f[static_cast<std::size_t>(pidx * num_types + ap)] != kInf) {
            needed = true;
            break;
          }
        }
        if (!needed) continue;
        scratch = counts;
        --scratch[static_cast<std::size_t>(a)];
        batch.push(scratch.data(),
                   StateHasher::update(counts_hash, a,
                                       counts[static_cast<std::size_t>(a)],
                                       scratch[static_cast<std::size_t>(a)]));
        batch_pidx.push_back(pidx);
      }
      if (!batch.empty()) {
        const auto& verdicts = parallel_eval->evaluate_batch(batch);
        for (std::size_t k = 0; k < batch_pidx.size(); ++k) {
          safe[static_cast<std::size_t>(batch_pidx[k])] = verdicts[k] ? 1 : 0;
        }
      }
    }

    for (std::int32_t a = 0; a < num_types; ++a) {
      if (counts[static_cast<std::size_t>(a)] == 0) continue;
      const long long pidx = idx - strides[static_cast<std::size_t>(a)];
      ++plan.stats.generated_states;

      double best = kInf;
      std::int8_t best_parent = -2;
      if (pidx == 0) {
        // Predecessor is the origin (safe); the first action costs 1.
        best = cost.transition_cost(-1, a);
        best_parent = -1;
      } else {
        for (std::int32_t ap = 0; ap < num_types; ++ap) {
          const double pf =
              f[static_cast<std::size_t>(pidx * num_types + ap)];
          if (pf == kInf) continue;
          if (ap != a) {
            // Type change: the predecessor topology must be safe.
            if (safe[static_cast<std::size_t>(pidx)] == 2) {
              scratch = counts;
              --scratch[static_cast<std::size_t>(a)];
              safe[static_cast<std::size_t>(pidx)] =
                  evaluator.feasible(
                      scratch.data(),
                      StateHasher::update(
                          counts_hash, a, counts[static_cast<std::size_t>(a)],
                          scratch[static_cast<std::size_t>(a)]))
                      ? 1
                      : 0;
            }
            if (safe[static_cast<std::size_t>(pidx)] == 0) continue;
          }
          const double candidate = pf + cost.transition_cost(ap, a);
          if (candidate < best) {
            best = candidate;
            best_parent = static_cast<std::int8_t>(ap);
          }
        }
      }
      if (best < kInf) {
        f[static_cast<std::size_t>(idx * num_types + a)] = best;
        parent[static_cast<std::size_t>(idx * num_types + a)] = best_parent;
      }
    }
  }

  // Goal: cheapest f(target, a); the target topology itself was verified
  // safe above.
  const long long tidx = num_states - 1;
  std::int32_t best_last = -1;
  double best_cost = kInf;
  for (std::int32_t a = 0; a < num_types; ++a) {
    const double c = f[static_cast<std::size_t>(tidx * num_types + a)];
    if (c < best_cost) {
      best_cost = c;
      best_last = a;
    }
  }
  if (best_last == -1) {
    plan.failure = "no feasible action sequence exists";
    return finish(std::move(plan));
  }

  plan.found = true;
  plan.cost = best_cost;

  // Rebuild the action sequence backwards via the parent array.
  CountVector cursor = target;
  long long idx = tidx;
  std::int32_t last = best_last;
  std::vector<PlannedAction> reversed;
  while (idx != 0) {
    reversed.push_back(
        PlannedAction{last, cursor[static_cast<std::size_t>(last)] - 1});
    const std::int8_t prev =
        parent[static_cast<std::size_t>(idx * num_types + last)];
    idx -= strides[static_cast<std::size_t>(last)];
    --cursor[static_cast<std::size_t>(last)];
    last = prev;  // -1 when we have just consumed the first action
  }
  plan.actions.assign(reversed.rbegin(), reversed.rend());
  return finish(std::move(plan));
}

}  // namespace klotski::core
