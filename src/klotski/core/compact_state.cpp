#include "klotski/core/compact_state.h"

namespace klotski::core {

std::int32_t total_actions(const CountVector& counts) {
  std::int32_t total = 0;
  for (const std::int32_t v : counts) total += v;
  return total;
}

bool is_target(const CountVector& counts, const CountVector& target) {
  return counts == target;
}

}  // namespace klotski::core
