#include "klotski/core/plan.h"

#include "klotski/core/cost_model.h"
#include "klotski/obs/metrics.h"

namespace klotski::core {

void publish_planner_metrics(const std::string& planner,
                             const PlannerStats& stats,
                             const SearchProvenance* provenance) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("planner.runs").inc();
  reg.counter("planner." + planner + ".runs").inc();
  reg.counter("planner.states_expanded").inc(stats.visited_states);
  reg.counter("planner.states_generated").inc(stats.generated_states);
  reg.gauge("planner.frontier_peak")
      .set_max(static_cast<double>(stats.frontier_peak));
  reg.counter("evaluator.evaluations").inc(stats.evaluations);
  reg.counter("evaluator.sat_cache_hits").inc(stats.cache_hits);
  reg.counter("evaluator.sat_cache_misses").inc(stats.sat_checks);
  reg.counter("evaluator.delta_applies").inc(stats.delta_applies);
  reg.counter("evaluator.full_replays").inc(stats.full_replays);
  reg.histogram("planner.wall_seconds").observe(stats.wall_seconds);
  if (provenance != nullptr && provenance->warm_start) {
    reg.counter("planner.warm_starts").inc();
    reg.counter("planner.warm_seeded_nodes").inc(provenance->warm_seeded_nodes);
    reg.counter("planner.sat_carried").inc(provenance->sat_carried);
  }
  if (provenance != nullptr && provenance->mem_budget_mb > 0.0) {
    reg.counter("planner.evicted_states").inc(provenance->evicted_states);
    reg.counter("planner.compactions").inc(provenance->compactions);
    if (provenance->beam_degraded) {
      reg.counter("planner.beam_degraded_runs").inc();
    }
    reg.gauge("planner.peak_tracked_bytes")
        .set_max(static_cast<double>(provenance->peak_tracked_bytes));
  }
}

std::vector<Phase> Plan::phases() const {
  std::vector<Phase> out;
  for (const PlannedAction& action : actions) {
    if (out.empty() || out.back().type != action.type) {
      out.push_back(Phase{action.type, {}});
    }
    out.back().block_indices.push_back(action.block_index);
  }
  return out;
}

double Plan::recompute_cost(double alpha) const {
  CostModel model(alpha);
  std::vector<std::int32_t> types;
  types.reserve(actions.size());
  for (const PlannedAction& action : actions) types.push_back(action.type);
  return model.sequence_cost(types);
}

}  // namespace klotski::core
