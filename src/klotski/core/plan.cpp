#include "klotski/core/plan.h"

#include "klotski/core/cost_model.h"

namespace klotski::core {

std::vector<Phase> Plan::phases() const {
  std::vector<Phase> out;
  for (const PlannedAction& action : actions) {
    if (out.empty() || out.back().type != action.type) {
      out.push_back(Phase{action.type, {}});
    }
    out.back().block_indices.push_back(action.block_index);
  }
  return out;
}

double Plan::recompute_cost(double alpha) const {
  CostModel model(alpha);
  std::vector<std::int32_t> types;
  types.reserve(actions.size());
  for (const PlannedAction& action : actions) types.push_back(action.type);
  return model.sequence_cost(types);
}

}  // namespace klotski::core
