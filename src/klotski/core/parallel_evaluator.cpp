#include "klotski/core/parallel_evaluator.h"

namespace klotski::core {

ParallelEvaluator::ParallelEvaluator(StateEvaluator& shared,
                                     const CheckerFactory& factory,
                                     int num_threads)
    : shared_(shared) {
  if (num_threads <= 1 || !factory) return;
  const migration::MigrationTask& source = shared_.task();
  contexts_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    auto ctx = std::make_unique<WorkerContext>();
    ctx->topo = std::make_unique<topo::Topology>(*source.topo);
    ctx->task = std::make_unique<migration::MigrationTask>(source);
    ctx->task->topo = ctx->topo.get();
    ctx->checker = factory(*ctx->task);
    // No private cache: verdicts flow back through the shared cache, and a
    // per-worker cache would double-count hits relative to the serial run.
    ctx->evaluator =
        std::make_unique<StateEvaluator>(*ctx->task, *ctx->checker, false);
    contexts_.push_back(std::move(ctx));
  }
  threads_.reserve(contexts_.size());
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelEvaluator::~ParallelEvaluator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelEvaluator::worker_loop(std::size_t widx) {
  WorkerContext& ctx = *contexts_[widx];
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    ++active_;
    lock.unlock();

    for (;;) {
      const std::size_t k = next_.fetch_add(1, std::memory_order_relaxed);
      if (k >= njobs_) break;
      job_results_[k] =
          ctx.evaluator->feasible(pending_[k].counts, pending_[k].hash) ? 1
                                                                        : 0;
    }

    lock.lock();
    if (--active_ == 0 && next_.load(std::memory_order_relaxed) >= njobs_) {
      done_cv_.notify_all();
    }
  }
}

const std::vector<std::uint8_t>& ParallelEvaluator::evaluate_batch(
    const std::vector<CountVector>& batch) {
  scratch_batch_ = std::make_unique<StateBatch>(
      shared_.target().size());
  for (const CountVector& counts : batch) {
    scratch_batch_->push(counts.data(), StateHasher::hash(counts));
  }
  return evaluate_batch(*scratch_batch_);
}

const std::vector<std::uint8_t>& ParallelEvaluator::evaluate_batch(
    const StateBatch& batch) {
  results_.assign(batch.size(), 0);
  pending_.clear();
  pending_index_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (shared_.use_cache()) {
      if (const auto cached =
              shared_.cache_lookup(batch.counts(i), batch.hash(i))) {
        results_[i] = *cached ? 1 : 0;
        continue;
      }
    }
    pending_.push_back(Job{batch.counts(i), batch.hash(i)});
    pending_index_.push_back(i);
  }
  if (pending_.empty()) return results_;

  // Serial fallback: no workers, or a single job that a dispatch round-trip
  // could only slow down. Runs on the shared evaluator, which does its own
  // cache store and stat accounting — exactly the serial code path.
  if (!parallel() || pending_.size() == 1) {
    for (std::size_t k = 0; k < pending_.size(); ++k) {
      results_[pending_index_[k]] =
          shared_.feasible(pending_[k].counts, pending_[k].hash) ? 1 : 0;
    }
    return results_;
  }

  job_results_.assign(pending_.size(), 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    njobs_ = pending_.size();
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return active_ == 0 &&
             next_.load(std::memory_order_relaxed) >= njobs_;
    });
  }

  // Merge on the calling thread: shared cache and stats are only ever
  // touched here, so they need no synchronization.
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    const bool ok = job_results_[k] != 0;
    if (shared_.use_cache()) {
      shared_.cache_store(pending_[k].counts, pending_[k].hash, ok);
    }
    results_[pending_index_[k]] = ok ? 1 : 0;
  }
  shared_.absorb_external(static_cast<long long>(pending_.size()), 0);
  return results_;
}

}  // namespace klotski::core
