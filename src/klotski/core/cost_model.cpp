#include "klotski/core/cost_model.h"

#include <stdexcept>

namespace klotski::core {

CostModel::CostModel(double alpha, std::vector<double> type_weights)
    : alpha_(alpha), type_weights_(std::move(type_weights)) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("CostModel: alpha must be in [0, 1]");
  }
  for (const double w : type_weights_) {
    if (w <= 0.0) {
      throw std::invalid_argument("CostModel: type weights must be > 0");
    }
  }
}

double CostModel::sequence_cost(const std::vector<std::int32_t>& types) const {
  double cost = 0.0;
  std::int32_t last = -1;
  for (const std::int32_t t : types) {
    cost += transition_cost(last, t);
    last = t;
  }
  return cost;
}

double CostModel::heuristic(const std::int32_t* counts,
                            const CountVector& target,
                            std::int32_t last_type) const {
  double h = 0.0;
  for (std::size_t a = 0; a < target.size(); ++a) {
    const std::int32_t remaining = target[a] - counts[a];
    if (remaining <= 0) continue;
    const double w = weight(static_cast<std::int32_t>(a));
    if (static_cast<std::int32_t>(a) == last_type) {
      // The current run may be extended at alpha * w per action.
      h += alpha_ * w * remaining;
    } else {
      h += w * (1.0 + alpha_ * (remaining - 1));
    }
  }
  return h;
}

double CostModel::heuristic_paper_literal(const std::int32_t* counts,
                                          const CountVector& target) const {
  double h = 0.0;
  for (std::size_t a = 0; a < target.size(); ++a) {
    const std::int32_t remaining = target[a] - counts[a];
    if (remaining <= 0) continue;
    h += weight(static_cast<std::int32_t>(a)) *
         (1.0 + alpha_ * (remaining - 1));
  }
  return h;
}

}  // namespace klotski::core
