// The ordering-agnostic compact topology representation of §4.2.
//
// Two states reached by different action orderings are equivalent whenever
// they have performed the same *number* of actions of each type, because the
// i-th executed block of a type is fixed (blocks of one type are
// interchangeable symmetry-block unions). A topology is therefore
// represented by the vector V = (v_i) of finished action counts per type —
// a handful of small integers instead of an O(|S|+|C|) graph.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/util/hash.h"

namespace klotski::core {

using CountVector = std::vector<std::int32_t>;

/// Total finished actions.
std::int32_t total_actions(const CountVector& counts);

/// True iff counts == target componentwise.
bool is_target(const CountVector& counts, const CountVector& target);

/// Hash functor for cache tables keyed on V.
using CountVectorHash = util::VectorHash<std::int32_t>;

/// A search state: the compact representation plus the last action type
/// (needed by the cost function; -1 before any action).
struct SearchState {
  CountVector counts;
  std::int32_t last_type = -1;

  friend bool operator==(const SearchState&, const SearchState&) = default;
};

struct SearchStateHash {
  std::size_t operator()(const SearchState& s) const {
    return static_cast<std::size_t>(util::hash_combine(
        util::hash_span(s.counts.data(), s.counts.size()),
        static_cast<std::uint64_t>(s.last_type + 1)));
  }
};

}  // namespace klotski::core
