// The ordering-agnostic compact topology representation of §4.2.
//
// Two states reached by different action orderings are equivalent whenever
// they have performed the same *number* of actions of each type, because the
// i-th executed block of a type is fixed (blocks of one type are
// interchangeable symmetry-block unions). A topology is therefore
// represented by the vector V = (v_i) of finished action counts per type —
// a handful of small integers instead of an O(|S|+|C|) graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "klotski/util/hash.h"

namespace klotski::core {

using CountVector = std::vector<std::int32_t>;

/// Total finished actions.
std::int32_t total_actions(const CountVector& counts);

/// True iff counts == target componentwise.
bool is_target(const CountVector& counts, const CountVector& target);

/// Incremental Zobrist hash over a count vector: the hash is the XOR of one
/// util::zobrist_key per (type, count) slot plus an arity term, so applying
/// or unapplying a single action updates it in O(1) instead of rehashing
/// all of V. Every structure keyed on V (sat cache, A* dedup table, DP
/// odometer) uses this one definition, so hashes computed incrementally
/// along a search path agree bit-for-bit with from-scratch hashes.
struct StateHasher {
  static std::uint64_t hash(const std::int32_t* counts, std::size_t n) {
    std::uint64_t h = util::mix64(0x5DEECE66DULL ^ n);
    for (std::size_t t = 0; t < n; ++t) {
      h ^= util::zobrist_key(static_cast<std::int32_t>(t), counts[t]);
    }
    return h;
  }
  static std::uint64_t hash(const CountVector& counts) {
    return hash(counts.data(), counts.size());
  }

  /// O(1) re-hash after counts[type] changes from `from` to `to`.
  static constexpr std::uint64_t update(std::uint64_t h, std::int32_t type,
                                        std::int32_t from, std::int32_t to) {
    return h ^ util::zobrist_key(type, from) ^ util::zobrist_key(type, to);
  }

  /// Search-state hash: the count hash folded with the last action type
  /// (-1 before any action), for duplicate detection keyed on (V, last).
  static constexpr std::uint64_t with_last(std::uint64_t count_hash,
                                           std::int32_t last_type) {
    return util::hash_combine(count_hash,
                              static_cast<std::uint64_t>(last_type + 1));
  }
};

/// Hash functor for generic cache tables keyed on V. Hot paths (planners,
/// sat cache) carry StateHasher values incrementally instead of calling
/// this per probe.
struct CountVectorHash {
  std::size_t operator()(const CountVector& v) const {
    return static_cast<std::size_t>(StateHasher::hash(v));
  }
};

/// A search state: the compact representation plus the last action type
/// (needed by the cost function; -1 before any action).
struct SearchState {
  CountVector counts;
  std::int32_t last_type = -1;

  friend bool operator==(const SearchState&, const SearchState&) = default;
};

struct SearchStateHash {
  std::size_t operator()(const SearchState& s) const {
    return static_cast<std::size_t>(
        StateHasher::with_last(StateHasher::hash(s.counts), s.last_type));
  }
};

/// A flat batch of count vectors with their precomputed hashes: what the
/// planners hand to ParallelEvaluator. One contiguous buffer instead of a
/// vector-of-vectors, so refilling it every expansion allocates nothing.
class StateBatch {
 public:
  explicit StateBatch(std::size_t stride) : stride_(stride) {}

  std::size_t stride() const { return stride_; }
  std::size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }
  void clear() {
    data_.clear();
    hashes_.clear();
  }

  void push(const std::int32_t* counts, std::uint64_t hash) {
    data_.insert(data_.end(), counts, counts + stride_);
    hashes_.push_back(hash);
  }

  const std::int32_t* counts(std::size_t i) const {
    return data_.data() + i * stride_;
  }
  std::uint64_t hash(std::size_t i) const { return hashes_[i]; }

 private:
  std::size_t stride_;
  std::vector<std::int32_t> data_;
  std::vector<std::uint64_t> hashes_;
};

}  // namespace klotski::core
