#include "klotski/baselines/janus_planner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "klotski/baselines/mrc_planner.h"  // task_changes_topology_structure
#include "klotski/core/cost_model.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/migration/symmetry.h"
#include "klotski/util/timer.h"

namespace klotski::baselines {

using core::CountVector;
using core::Plan;
using core::PlannedAction;
using core::PlannerOptions;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Whether Janus can template this block as (part of) a superblock step:
/// every element it touches must belong to a symmetry class with at least
/// two members, i.e. be interchangeable with something. Janus's batching
/// comes from topological symmetry, not from locality: a block that
/// operates elements the partition cannot pair with anything has no
/// symmetry to exploit, so it becomes its own rollout step with its own
/// safety validation. On a Clos fabric every chunk touches only large
/// classes and batching matches Klotski's operation blocks; on an
/// irregular flat fabric the partition is near-singleton and the plan
/// degrades toward one step per action.
bool block_templatable(const topo::Topology& topo,
                       const migration::SymmetryPartition& part,
                       const migration::OperationBlock& block) {
  const auto interchangeable = [&](topo::SwitchId sw) {
    const auto cls =
        static_cast<std::size_t>(part.class_of[static_cast<std::size_t>(sw)]);
    return part.blocks[cls].size() >= 2;
  };
  for (const migration::ElementOp& op : block.ops) {
    if (op.kind == migration::ElementOp::Kind::kSwitch) {
      if (!interchangeable(op.id)) return false;
    } else {
      const topo::Circuit& c = topo.circuit(op.id);
      if (!interchangeable(c.a) || !interchangeable(c.b)) return false;
    }
  }
  return true;
}

}  // namespace

Plan JanusPlanner::plan(migration::MigrationTask& task,
                        constraints::CompositeChecker& checker,
                        const PlannerOptions& options) {
  util::Stopwatch stopwatch;
  const util::Deadline deadline =
      options.deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.deadline_seconds)
          : util::Deadline::unlimited();

  Plan plan;
  plan.planner = name();

  // Janus disables the ordering-agnostic cache: it has no compact topology
  // representation to key it on.
  core::StateEvaluator evaluator(task, checker, /*use_cache=*/false);
  const CountVector& target = evaluator.target();
  const auto num_types = static_cast<std::int32_t>(target.size());
  const core::CostModel cost(options.alpha, options.type_weights);

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.sat_checks = evaluator.sat_checks();
    p.stats.cache_hits = 0;
    p.stats.evaluations = evaluator.evaluations();
    p.stats.delta_applies = evaluator.delta_applies();
    p.stats.full_replays = evaluator.full_replays();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    core::publish_planner_metrics(name(), p.stats);
    return std::move(p);
  };

  if (task_changes_topology_structure(task)) {
    plan.failure =
        "Janus assumes unchanged symmetry; it cannot plan migrations that "
        "introduce a new layer";
    return finish(std::move(plan));
  }

  // Superblock structure from the origin topology's symmetry partition
  // (Janus assumes it does not change during the migration). Consecutive
  // same-type actions fold into one superblock step — and skip the
  // inter-step safety validation — only when both blocks are templatable
  // over the partition.
  task.reset_to_original();
  const migration::SymmetryPartition partition =
      migration::compute_symmetry(*task.topo);
  std::vector<std::vector<char>> templatable(task.blocks.size());
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    templatable[t].reserve(task.blocks[t].size());
    for (const migration::OperationBlock& block : task.blocks[t]) {
      templatable[t].push_back(
          block_templatable(*task.topo, partition, block) ? 1 : 0);
    }
  }
  auto batches_with_predecessor = [&](std::int32_t type,
                                      std::int32_t block_index) {
    const auto& type_flags = templatable[static_cast<std::size_t>(type)];
    return block_index > 0 &&
           type_flags[static_cast<std::size_t>(block_index)] != 0 &&
           type_flags[static_cast<std::size_t>(block_index - 1)] != 0;
  };

  const CountVector origin(static_cast<std::size_t>(num_types), 0);
  if (!evaluator.feasible(origin)) {
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  if (origin == target) {
    plan.found = true;
    return finish(std::move(plan));
  }
  if (!evaluator.feasible(target)) {
    plan.failure = "target topology violates constraints";
    return finish(std::move(plan));
  }

  const long long state_limit =
      std::min<long long>(options.max_states, 20'000'000);
  std::vector<long long> strides(static_cast<std::size_t>(num_types));
  long long num_states = 1;
  for (std::int32_t a = 0; a < num_types; ++a) {
    strides[static_cast<std::size_t>(a)] = num_states;
    num_states *= target[static_cast<std::size_t>(a)] + 1;
    if (num_states > state_limit) {
      plan.failure = "state space too large";
      return finish(std::move(plan));
    }
  }

  std::vector<double> f(static_cast<std::size_t>(num_states * num_types),
                        kInf);
  std::vector<std::int8_t> parent(
      static_cast<std::size_t>(num_states * num_types), -2);

  // Full traversal. For every transition (predecessor, a' -> a) Janus
  // re-validates the reached intermediate topology: without the compact
  // representation equivalent arrivals are not recognized as the same
  // state, so the satisfiability work is repeated per arc.
  CountVector counts(static_cast<std::size_t>(num_types), 0);
  for (long long idx = 1; idx < num_states; ++idx) {
    for (std::int32_t a = 0; a < num_types; ++a) {
      if (++counts[static_cast<std::size_t>(a)] <=
          target[static_cast<std::size_t>(a)]) {
        break;
      }
      counts[static_cast<std::size_t>(a)] = 0;
    }
    if (deadline.expired()) {
      plan.failure = "timeout";
      return finish(std::move(plan));
    }
    ++plan.stats.visited_states;

    for (std::int32_t a = 0; a < num_types; ++a) {
      if (counts[static_cast<std::size_t>(a)] == 0) continue;
      const long long pidx = idx - strides[static_cast<std::size_t>(a)];

      double best = kInf;
      std::int8_t best_parent = -2;
      if (pidx == 0) {
        // Predecessor is the origin, which is a safe run boundary.
        ++plan.stats.generated_states;
        best = cost.transition_cost(-1, a);
        best_parent = -1;
      } else {
        CountVector pred = counts;
        --pred[static_cast<std::size_t>(a)];
        const bool batchable = batches_with_predecessor(
            a, counts[static_cast<std::size_t>(a)] - 1);
        for (std::int32_t ap = 0; ap < num_types; ++ap) {
          const double pf =
              f[static_cast<std::size_t>(pidx * num_types + ap)];
          if (pf == kInf) continue;
          ++plan.stats.generated_states;
          // Superblock boundaries close a rollout step: the predecessor
          // topology must be safe. A same-type continuation stays inside
          // the step only when the blocks share a symmetry signature.
          // Janus re-validates per arc — without the compact
          // representation equivalent arrivals are not recognized as the
          // same state, so the satisfiability work is repeated.
          const bool batched = ap == a && batchable;
          if (!batched && !evaluator.feasible(pred)) continue;
          const double candidate =
              pf + cost.transition_cost(batched ? a : -1, a);
          if (candidate < best) {
            best = candidate;
            best_parent = static_cast<std::int8_t>(ap);
          }
        }
      }
      if (best < kInf) {
        f[static_cast<std::size_t>(idx * num_types + a)] = best;
        parent[static_cast<std::size_t>(idx * num_types + a)] = best_parent;
      }
    }
  }

  const long long tidx = num_states - 1;
  std::int32_t best_last = -1;
  double best_cost = kInf;
  for (std::int32_t a = 0; a < num_types; ++a) {
    const double c = f[static_cast<std::size_t>(tidx * num_types + a)];
    if (c < best_cost) {
      best_cost = c;
      best_last = a;
    }
  }
  if (best_last == -1) {
    plan.failure = "no feasible action sequence exists";
    return finish(std::move(plan));
  }

  plan.found = true;
  plan.cost = best_cost;
  CountVector cursor = target;
  long long idx = tidx;
  std::int32_t last = best_last;
  std::vector<PlannedAction> reversed;
  while (idx != 0) {
    reversed.push_back(
        PlannedAction{last, cursor[static_cast<std::size_t>(last)] - 1});
    const std::int8_t prev =
        parent[static_cast<std::size_t>(idx * num_types + last)];
    idx -= strides[static_cast<std::size_t>(last)];
    --cursor[static_cast<std::size_t>(last)];
    last = prev;
  }
  plan.actions.assign(reversed.rbegin(), reversed.rend());
  return finish(std::move(plan));
}

}  // namespace klotski::baselines
