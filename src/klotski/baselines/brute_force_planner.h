// Exhaustive-optimal planner used as a test oracle on tiny tasks.
//
// Depth-first enumeration of every action-type sequence (with feasibility
// pruning but no memoization), keeping the cheapest complete sequence. The
// search space is the number of distinct permutations of the action-type
// multiset — super-exponential — so this planner refuses tasks with more
// than a small number of actions.
#pragma once

#include "klotski/core/planner.h"

namespace klotski::baselines {

class BruteForcePlanner : public core::Planner {
 public:
  /// Tasks above this many total actions are rejected.
  static constexpr int kMaxActions = 16;

  std::string name() const override { return "BruteForce"; }

  core::Plan plan(migration::MigrationTask& task,
                  constraints::CompositeChecker& checker,
                  const core::PlannerOptions& options) override;
};

}  // namespace klotski::baselines
