// Janus baseline [4] (§6.1, §8): plans network changes by exploiting the
// *symmetry* of DCN topologies.
//
// Modeled faithfully to the paper's comparison setup:
//  * Janus's superblocks are defined to be Klotski's operation blocks, so
//    it searches the same pruned action space;
//  * Janus assumes the symmetry structure does not change during the
//    migration, so it rejects migrations that introduce a new switch role
//    (the DMAG layer);
//  * it traverses the *entire* search space (no A*-style early return) and
//    has no ordering-agnostic satisfiability cache: it preprocesses and
//    re-checks every (state, incoming-action) combination, which is what
//    makes it 8.4-380.7x slower than Klotski-A* in the paper's evaluation.
#pragma once

#include "klotski/core/planner.h"

namespace klotski::baselines {

class JanusPlanner : public core::Planner {
 public:
  std::string name() const override { return "Janus"; }

  core::Plan plan(migration::MigrationTask& task,
                  constraints::CompositeChecker& checker,
                  const core::PlannerOptions& options) override;
};

}  // namespace klotski::baselines
