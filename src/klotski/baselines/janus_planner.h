// Janus baseline [4] (§6.1, §8): plans network changes by exploiting the
// *symmetry* of DCN topologies.
//
// Modeled faithfully to the paper's comparison setup:
//  * Janus's actions are Klotski's operation blocks, so it searches the
//    same pruned action space — but it may fold consecutive same-type
//    blocks into one superblock step (skipping the inter-step safety
//    validation) only when they touch the same symmetry classes of the
//    origin topology. On Clos fabrics the chunks of a grid are
//    interchangeable and batch exactly like Klotski's runs; on an
//    irregular flat fabric the partition is near-singleton, so every block
//    is its own rollout step and the plan cost degrades toward one step
//    per action (DESIGN.md §12);
//  * Janus assumes the symmetry structure does not change during the
//    migration, so it rejects migrations that introduce a new switch role
//    (the DMAG layer);
//  * it traverses the *entire* search space (no A*-style early return) and
//    has no ordering-agnostic satisfiability cache: it preprocesses and
//    re-checks every (state, incoming-action) combination, which is what
//    makes it 8.4-380.7x slower than Klotski-A* in the paper's evaluation.
#pragma once

#include "klotski/core/planner.h"

namespace klotski::baselines {

class JanusPlanner : public core::Planner {
 public:
  std::string name() const override { return "Janus"; }

  core::Plan plan(migration::MigrationTask& task,
                  constraints::CompositeChecker& checker,
                  const core::PlannerOptions& options) override;
};

}  // namespace klotski::baselines
