// MRC baseline: a greedy planner that, at every step, picks the feasible
// next action maximizing the minimum residual capacity across circuits
// (the strategy of minimal-rewiring-style planners [37], §6.1).
//
// MRC predates operation-block planning: it treats every remaining block as
// a distinct candidate (no compact-state dedup, no satisfiability cache),
// and evaluates the full ECMP load of each candidate to compute the
// residual-capacity objective — the "preprocess all available action
// combinations" cost the paper calls out. It is safe but not cost-optimal
// (it ignores action-type grouping, Figure 8(a)), and it cannot plan
// migrations that introduce a new switch role (E-DMAG, Figure 9).
#pragma once

#include "klotski/core/planner.h"

namespace klotski::baselines {

class MrcPlanner : public core::Planner {
 public:
  std::string name() const override { return "MRC"; }

  core::Plan plan(migration::MigrationTask& task,
                  constraints::CompositeChecker& checker,
                  const core::PlannerOptions& options) override;
};

/// True when the task introduces a switch role absent from the original
/// topology (e.g. the MA layer): the property that defeats MRC and Janus.
bool task_changes_topology_structure(const migration::MigrationTask& task);

}  // namespace klotski::baselines
