#include "klotski/baselines/mrc_planner.h"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "klotski/core/cost_model.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/util/timer.h"

namespace klotski::baselines {

using core::Plan;
using core::PlannedAction;
using core::PlannerOptions;

bool task_changes_topology_structure(const migration::MigrationTask& task) {
  std::array<bool, topo::kNumSwitchRoles> original_roles{};
  task.original_state.restore(*task.topo);
  for (const topo::Switch& s : task.topo->switches()) {
    if (s.present()) original_roles[static_cast<int>(s.role)] = true;
  }
  task.target_state.restore(*task.topo);
  bool changes = false;
  for (const topo::Switch& s : task.topo->switches()) {
    if (s.present() && !original_roles[static_cast<int>(s.role)]) {
      changes = true;
      break;
    }
  }
  task.original_state.restore(*task.topo);
  return changes;
}

Plan MrcPlanner::plan(migration::MigrationTask& task,
                      constraints::CompositeChecker& checker,
                      const PlannerOptions& options) {
  util::Stopwatch stopwatch;
  const util::Deadline deadline =
      options.deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.deadline_seconds)
          : util::Deadline::unlimited();

  Plan plan;
  plan.planner = name();

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    core::publish_planner_metrics(name(), p.stats);
    return std::move(p);
  };

  if (task_changes_topology_structure(task)) {
    plan.failure = "MRC cannot plan migrations that change the topology";
    return finish(std::move(plan));
  }

  topo::Topology& topo = *task.topo;
  traffic::EcmpRouter router(topo);
  const core::CostModel cost(options.alpha, options.type_weights);
  const auto num_types = static_cast<std::int32_t>(task.blocks.size());

  task.reset_to_original();
  if (!checker.check(topo).satisfied) {
    ++plan.stats.sat_checks;
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  ++plan.stats.sat_checks;

  // Greedy loop: the topology carries the applied prefix; each step tries
  // every remaining block (MRC does not know blocks of a type are
  // interchangeable, so every block is a distinct candidate, and it may
  // execute a type's blocks out of their canonical order).
  std::vector<std::vector<bool>> used(static_cast<std::size_t>(num_types));
  for (std::int32_t a = 0; a < num_types; ++a) {
    used[static_cast<std::size_t>(a)].assign(
        task.blocks[static_cast<std::size_t>(a)].size(), false);
  }
  std::int32_t last = -1;
  const int total = task.total_actions();

  traffic::LoadVector loads;
  auto min_residual = [&]() -> double {
    loads.assign(topo.num_circuits() * 2, 0.0);
    for (const traffic::Demand& d : task.demands) {
      if (!router.assign(d, loads)) {
        return -std::numeric_limits<double>::infinity();
      }
    }
    double min_resid = std::numeric_limits<double>::infinity();
    for (const topo::Circuit& c : topo.circuits()) {
      if (!topo.circuit_carries_traffic(c.id)) continue;
      const double load =
          std::max(loads[static_cast<std::size_t>(c.id) * 2],
                   loads[static_cast<std::size_t>(c.id) * 2 + 1]);
      min_resid = std::min(min_resid, 1.0 - load / c.capacity_tbps);
    }
    return min_resid;
  };

  for (int step = 0; step < total; ++step) {
    if (deadline.expired()) {
      plan.failure = "timeout";
      return finish(std::move(plan));
    }

    double best_metric = -std::numeric_limits<double>::infinity();
    std::int32_t best_type = -1;
    std::int32_t best_block = -1;

    for (std::int32_t a = 0; a < num_types; ++a) {
      const auto type_total =
          static_cast<std::int32_t>(task.blocks[a].size());
      for (std::int32_t b = 0; b < type_total; ++b) {
        if (used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
          continue;
        }
        ++plan.stats.generated_states;
        const migration::OperationBlock& block =
            task.blocks[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)];
        const topo::TopologyState before = topo::TopologyState::capture(topo);
        block.apply(topo);
        ++plan.stats.sat_checks;
        double metric = -std::numeric_limits<double>::infinity();
        if (checker.check(topo).satisfied) metric = min_residual();
        before.restore(topo);

        if (metric > best_metric) {
          best_metric = metric;
          best_type = a;
          best_block = b;
        }
        if (deadline.expired()) {
          plan.failure = "timeout";
          return finish(std::move(plan));
        }
      }
    }

    if (best_type == -1 ||
        best_metric == -std::numeric_limits<double>::infinity()) {
      plan.failure = "greedy search hit a dead end at step " +
                     std::to_string(step);
      return finish(std::move(plan));
    }

    task.blocks[static_cast<std::size_t>(best_type)]
               [static_cast<std::size_t>(best_block)]
                   .apply(topo);
    plan.actions.push_back(PlannedAction{best_type, best_block});
    plan.cost += cost.transition_cost(last, best_type);
    last = best_type;
    used[static_cast<std::size_t>(best_type)]
        [static_cast<std::size_t>(best_block)] = true;
    ++plan.stats.visited_states;
  }

  plan.found = true;
  return finish(std::move(plan));
}

}  // namespace klotski::baselines
