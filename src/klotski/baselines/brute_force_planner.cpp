#include "klotski/baselines/brute_force_planner.h"

#include <limits>
#include <vector>

#include "klotski/core/cost_model.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/util/timer.h"

namespace klotski::baselines {

using core::CountVector;
using core::Plan;
using core::PlannedAction;
using core::PlannerOptions;

Plan BruteForcePlanner::plan(migration::MigrationTask& task,
                             constraints::CompositeChecker& checker,
                             const PlannerOptions& options) {
  util::Stopwatch stopwatch;
  Plan plan;
  plan.planner = name();

  // The oracle may use the cache: it changes which sequences are *checked*,
  // not which are enumerated, so optimality is unaffected.
  core::StateEvaluator evaluator(task, checker,
                                 options.use_satisfiability_cache);
  const CountVector& target = evaluator.target();
  const auto num_types = static_cast<std::int32_t>(target.size());
  const core::CostModel cost(options.alpha, options.type_weights);

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.sat_checks = evaluator.sat_checks();
    p.stats.cache_hits = evaluator.cache_hits();
    p.stats.evaluations = evaluator.evaluations();
    p.stats.delta_applies = evaluator.delta_applies();
    p.stats.full_replays = evaluator.full_replays();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    core::publish_planner_metrics(name(), p.stats);
    return std::move(p);
  };

  if (task.total_actions() > kMaxActions) {
    plan.failure = "task too large for brute force";
    return finish(std::move(plan));
  }

  CountVector counts(static_cast<std::size_t>(num_types), 0);
  if (!evaluator.feasible(counts)) {
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  if (counts != target && !evaluator.feasible(target)) {
    plan.failure = "target topology violates constraints";
    return finish(std::move(plan));
  }

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::int32_t> sequence;
  std::vector<std::int32_t> best_sequence;

  // Plain DFS over all type sequences. Constraints apply at action-type
  // boundaries (Eq. 4-6): switching to a different type requires the
  // current topology to be safe; extending the current parallel run does
  // not. The origin and target were verified above.
  auto dfs = [&](auto&& self, std::int32_t last, double g) -> void {
    ++plan.stats.visited_states;
    if (counts == target) {
      if (g < best_cost) {
        best_cost = g;
        best_sequence = sequence;
      }
      return;
    }
    bool boundary_known = false;
    bool boundary_ok = false;
    for (std::int32_t a = 0; a < num_types; ++a) {
      if (counts[static_cast<std::size_t>(a)] >=
          target[static_cast<std::size_t>(a)]) {
        continue;
      }
      if (a != last) {
        if (!boundary_known) {
          boundary_ok = evaluator.feasible(counts);
          boundary_known = true;
        }
        if (!boundary_ok) continue;
      }
      ++plan.stats.generated_states;
      const double g2 = g + cost.transition_cost(last, a);
      if (g2 >= best_cost) continue;  // cost pruning only
      ++counts[static_cast<std::size_t>(a)];
      sequence.push_back(a);
      self(self, a, g2);
      sequence.pop_back();
      --counts[static_cast<std::size_t>(a)];
    }
  };
  dfs(dfs, -1, 0.0);

  if (best_sequence.empty() && core::total_actions(target) > 0 &&
      best_cost == std::numeric_limits<double>::infinity()) {
    plan.failure = "no feasible action sequence exists";
    return finish(std::move(plan));
  }

  plan.found = true;
  plan.cost = best_cost == std::numeric_limits<double>::infinity() ? 0.0
                                                                   : best_cost;
  CountVector done(static_cast<std::size_t>(num_types), 0);
  for (const std::int32_t a : best_sequence) {
    plan.actions.push_back(
        PlannedAction{a, done[static_cast<std::size_t>(a)]++});
  }
  return finish(std::move(plan));
}

}  // namespace klotski::baselines
