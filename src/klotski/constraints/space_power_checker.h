// Space & power constraints (§7.2): old and new hardware generations share
// the same room; a limited amount of extra space/power supports transient
// states where both are installed. Modeled as a cap on the number of
// *present* switches per (role, grid-or-dc) location group.
#pragma once

#include <unordered_map>

#include "klotski/constraints/checker.h"
#include "klotski/util/hash.h"

namespace klotski::constraints {

struct SpacePowerParams {
  /// Maximum present switches in one HGRID grid location, across
  /// generations. 0 disables the grid cap.
  int max_present_per_grid = 0;
  /// Maximum present SSWs per (dc, plane). 0 disables.
  int max_present_per_plane = 0;
};

class SpacePowerChecker : public Checker {
 public:
  explicit SpacePowerChecker(SpacePowerParams params) : params_(params) {}

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "space-power"; }

 private:
  SpacePowerParams params_;
};

}  // namespace klotski::constraints
