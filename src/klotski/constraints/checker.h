// Constraint checker interface (the `C*` of Algorithms 1 and 2).
//
// A checker examines one intermediate topology and reports whether it is
// safe. Checkers are stateless with respect to the search (the same topology
// always yields the same verdict), which is what makes the ordering-agnostic
// satisfiability cache of §4.2 sound.
//
// Purity contract: a verdict is a function of the topology's element states
// and the checker's own parameters only. Because every element-state change
// bumps Topology::state_version(), checkers may memoize their last verdict
// keyed on (topology identity, state version) and must invalidate that memo
// whenever one of their own parameters changes. Out-of-band edits that a
// verdict depends on but that do not flow through the versioned mutators
// (e.g. rewriting a circuit's capacity or a switch's max_ports in place)
// must be followed by Topology::bump_state_version().
#pragma once

#include <memory>
#include <string>

#include "klotski/topo/topology.h"

namespace klotski::constraints {

struct Verdict {
  bool satisfied = true;
  /// Human-readable reason for the first violation found (diagnostics for
  /// the operators' trial-and-error loop, §2.3).
  std::string violation;

  static Verdict ok() { return Verdict{}; }
  static Verdict fail(std::string reason) {
    return Verdict{false, std::move(reason)};
  }
};

class Checker {
 public:
  virtual ~Checker() = default;

  /// Checks the current element states of `topo`.
  virtual Verdict check(const topo::Topology& topo) = 0;

  /// Short name for logs and audit reports.
  virtual std::string name() const = 0;
};

using CheckerPtr = std::unique_ptr<Checker>;

}  // namespace klotski::constraints
