// Port constraints (Eq. 6): the number of present circuits terminating on a
// present switch must not exceed the switch's physical port count. Tight
// port budgets are what force "decommission first to free up the ports"
// orderings (§2.3).
//
// The verdict is memoized per (topology identity, state version); editing a
// switch's max_ports in place must be followed by
// Topology::bump_state_version() (see the purity contract in checker.h).
#pragma once

#include <cstdint>

#include "klotski/constraints/checker.h"

namespace klotski::constraints {

class PortChecker : public Checker {
 public:
  PortChecker() = default;

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "ports"; }

 private:
  Verdict evaluate(const topo::Topology& topo) const;

  bool memo_valid_ = false;
  const topo::Topology* memo_topo_ = nullptr;
  std::uint64_t memo_version_ = 0;
  Verdict memo_verdict_;
};

}  // namespace klotski::constraints
