// Port constraints (Eq. 6): the number of present circuits terminating on a
// present switch must not exceed the switch's physical port count. Tight
// port budgets are what force "decommission first to free up the ports"
// orderings (§2.3).
#pragma once

#include "klotski/constraints/checker.h"

namespace klotski::constraints {

class PortChecker : public Checker {
 public:
  PortChecker() = default;

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "ports"; }
};

}  // namespace klotski::constraints
