#include "klotski/constraints/demand_checker.h"

#include <algorithm>

#include "klotski/util/string_util.h"

namespace klotski::constraints {

DemandChecker::DemandChecker(traffic::EcmpRouter& router,
                             traffic::DemandSet demands,
                             DemandCheckerParams params)
    : router_(router), demands_(std::move(demands)), params_(params) {}

Verdict DemandChecker::check(const topo::Topology& topo) {
  loads_.assign(topo.num_circuits() * 2, 0.0);
  last_max_utilization_ = 0.0;

  std::string failed_demand;
  if (!router_.assign_all(demands_, loads_, &failed_demand)) {
    return Verdict::fail("demand " + failed_demand +
                         " has no path in this topology");
  }

  // Funneling inflation: a circuit whose endpoint switch also terminates
  // drained or absent circuits absorbs the traffic its siblings shed during
  // the asynchronous drain transient.
  std::vector<bool> funneled;
  if (params_.funneling_margin > 0.0) {
    funneled.assign(topo.num_switches(), false);
    for (const topo::Circuit& c : topo.circuits()) {
      if (c.state != topo::ElementState::kActive) {
        if (c.a < static_cast<topo::SwitchId>(funneled.size())) {
          funneled[static_cast<std::size_t>(c.a)] = true;
        }
        if (c.b < static_cast<topo::SwitchId>(funneled.size())) {
          funneled[static_cast<std::size_t>(c.b)] = true;
        }
      }
    }
  }

  for (const topo::Circuit& c : topo.circuits()) {
    const double load = std::max(loads_[static_cast<std::size_t>(c.id) * 2],
                                 loads_[static_cast<std::size_t>(c.id) * 2 + 1]);
    if (load <= 0.0) continue;
    double util = load / c.capacity_tbps;
    if (params_.funneling_margin > 0.0 &&
        (funneled[static_cast<std::size_t>(c.a)] ||
         funneled[static_cast<std::size_t>(c.b)])) {
      util *= 1.0 + params_.funneling_margin;
    }
    last_max_utilization_ = std::max(last_max_utilization_, util);
    if (util > params_.max_utilization) {
      return Verdict::fail(
          "circuit " + std::to_string(c.id) + " (" + topo.sw(c.a).name +
          " - " + topo.sw(c.b).name + ") at " +
          util::format_double(util * 100.0, 1) + "% > theta " +
          util::format_double(params_.max_utilization * 100.0, 1) + "%");
    }
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
