#include "klotski/constraints/demand_checker.h"

#include <algorithm>

#include "klotski/obs/metrics.h"
#include "klotski/util/string_util.h"

namespace klotski::constraints {

DemandChecker::DemandChecker(traffic::EcmpRouter& router,
                             traffic::DemandSet demands,
                             DemandCheckerParams params)
    : router_(router), demands_(std::move(demands)), params_(params) {
  router_.bind_demands(demands_);
}

Verdict DemandChecker::check(const topo::Topology& topo) {
  if (memo_valid_ && memo_topo_ == &topo &&
      memo_version_ == topo.state_version()) {
    static obs::Counter& memo_hits =
        obs::Registry::global().counter("checker.demand.memo_hits");
    memo_hits.inc();
    last_max_utilization_ = memo_util_;
    return memo_verdict_;
  }
  Verdict verdict = evaluate(topo);
  memo_valid_ = true;
  memo_topo_ = &topo;
  memo_version_ = topo.state_version();
  memo_verdict_ = verdict;
  memo_util_ = last_max_utilization_;
  return verdict;
}

Verdict DemandChecker::evaluate(const topo::Topology& topo) {
  loads_.assign(topo.num_circuits() * 2, 0.0);
  last_max_utilization_ = 0.0;

  std::string failed_demand;
  if (!router_.assign_all(demands_, loads_, &failed_demand)) {
    return Verdict::fail("demand " + failed_demand +
                         " has no path in this topology");
  }

  // Funneling inflation: a circuit whose endpoint switch also terminates
  // drained or absent circuits absorbs the traffic its siblings shed during
  // the asynchronous drain transient.
  if (params_.funneling_margin > 0.0) {
    funneled_.assign(topo.num_switches(), 0);
    for (const topo::Circuit& c : topo.circuits()) {
      if (c.state != topo::ElementState::kActive) {
        if (c.a < static_cast<topo::SwitchId>(funneled_.size())) {
          funneled_[static_cast<std::size_t>(c.a)] = 1;
        }
        if (c.b < static_cast<topo::SwitchId>(funneled_.size())) {
          funneled_[static_cast<std::size_t>(c.b)] = 1;
        }
      }
    }
  }

  // Utilization scan. loads_ was zeroed above, so after a bound assign_all
  // the router's touched-circuit list (ascending ids) covers every circuit
  // with non-zero load — visiting only those is verdict-identical to the
  // full scan, including which over-theta circuit is reported first. Manual
  // or unbound load vectors fall back to scanning every circuit.
  static obs::Counter& touched_scans =
      obs::Registry::global().counter("checker.demand.touched_scans");
  static obs::Counter& full_scans =
      obs::Registry::global().counter("checker.demand.full_scans");
  const bool use_touched = router_.touched_valid();
  (use_touched ? touched_scans : full_scans).inc();
  const std::size_t scan_count =
      use_touched ? router_.touched_circuits().size() : topo.num_circuits();
  for (std::size_t i = 0; i < scan_count; ++i) {
    const topo::Circuit& c = topo.circuit(
        use_touched ? router_.touched_circuits()[i]
                    : static_cast<topo::CircuitId>(i));
    const double load = std::max(loads_[static_cast<std::size_t>(c.id) * 2],
                                 loads_[static_cast<std::size_t>(c.id) * 2 + 1]);
    if (load <= 0.0) continue;
    double util = load / c.capacity_tbps;
    if (params_.funneling_margin > 0.0 &&
        (funneled_[static_cast<std::size_t>(c.a)] ||
         funneled_[static_cast<std::size_t>(c.b)])) {
      util *= 1.0 + params_.funneling_margin;
    }
    last_max_utilization_ = std::max(last_max_utilization_, util);
    if (util > params_.max_utilization) {
      return Verdict::fail(
          "circuit " + std::to_string(c.id) + " (" + topo.sw(c.a).name +
          " - " + topo.sw(c.b).name + ") at " +
          util::format_double(util * 100.0, 1) + "% > theta " +
          util::format_double(params_.max_utilization * 100.0, 1) + "%");
    }
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
