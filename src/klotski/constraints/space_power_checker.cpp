#include "klotski/constraints/space_power_checker.h"

#include <string>
#include <vector>

namespace klotski::constraints {

Verdict SpacePowerChecker::check(const topo::Topology& topo) {
  if (params_.max_present_per_grid > 0) {
    std::unordered_map<int, int> per_grid;
    for (const topo::Switch& s : topo.switches()) {
      if (!s.present() || s.loc.grid < 0) continue;
      if (s.role != topo::SwitchRole::kFadu &&
          s.role != topo::SwitchRole::kFauu) {
        continue;
      }
      const int count = ++per_grid[s.loc.grid];
      if (count > params_.max_present_per_grid) {
        return Verdict::fail("grid " + std::to_string(s.loc.grid) +
                             " exceeds space/power budget of " +
                             std::to_string(params_.max_present_per_grid) +
                             " switches");
      }
    }
  }
  if (params_.max_present_per_plane > 0) {
    std::unordered_map<int, int> per_plane;  // key = dc * 4096 + plane
    for (const topo::Switch& s : topo.switches()) {
      if (!s.present() || s.role != topo::SwitchRole::kSsw) continue;
      const int key = s.loc.dc * 4096 + s.loc.plane;
      const int count = ++per_plane[key];
      if (count > params_.max_present_per_plane) {
        return Verdict::fail(
            "dc " + std::to_string(s.loc.dc) + " plane " +
            std::to_string(s.loc.plane) + " exceeds space/power budget of " +
            std::to_string(params_.max_present_per_plane) + " SSWs");
      }
    }
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
