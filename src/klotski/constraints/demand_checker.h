// Demand constraints (Eq. 4-5): every demand must have a path from source to
// target in the intermediate topology, and the utilization of every circuit
// — aggregated over all demands under ECMP — must stay below the bound
// theta, so the network can survive failures and absorb traffic spikes.
//
// The optional funneling margin models the transient congestion of §2.2 /
// §7.2: circuits adjacent to a switch that neighbors drained equipment see
// their load inflated by (1 + margin), approximating the window in which
// sibling circuits have drained but this one has not yet.
#pragma once

#include <vector>

#include "klotski/constraints/checker.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::constraints {

struct DemandCheckerParams {
  /// Maximum utilization rate theta (default 75%, §6.1).
  double max_utilization = 0.75;
  /// Funneling inflation for circuits incident to a switch that also has
  /// drained/absent circuits (0 disables).
  double funneling_margin = 0.0;
};

class DemandChecker : public Checker {
 public:
  /// The router must outlive the checker and be bound to the same topology
  /// object that check() will be called with.
  DemandChecker(traffic::EcmpRouter& router, traffic::DemandSet demands,
                DemandCheckerParams params = {});

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "demands"; }

  void set_demands(traffic::DemandSet demands) {
    demands_ = std::move(demands);
  }
  const traffic::DemandSet& demands() const { return demands_; }
  const DemandCheckerParams& params() const { return params_; }
  void set_max_utilization(double theta) { params_.max_utilization = theta; }

  /// Peak utilization seen by the most recent check (diagnostics).
  double last_max_utilization() const { return last_max_utilization_; }

 private:
  traffic::EcmpRouter& router_;
  traffic::DemandSet demands_;
  DemandCheckerParams params_;
  traffic::LoadVector loads_;  // scratch
  double last_max_utilization_ = 0.0;
};

}  // namespace klotski::constraints
