// Demand constraints (Eq. 4-5): every demand must have a path from source to
// target in the intermediate topology, and the utilization of every circuit
// — aggregated over all demands under ECMP — must stay below the bound
// theta, so the network can survive failures and absorb traffic spikes.
//
// The optional funneling margin models the transient congestion of §2.2 /
// §7.2: circuits adjacent to a switch that neighbors drained equipment see
// their load inflated by (1 + margin), approximating the window in which
// sibling circuits have drained but this one has not yet.
//
// The checker binds its demand set to the router (EcmpRouter::bind_demands)
// so repeated checks reuse per-target-set routing caches, and memoizes its
// last verdict keyed on the topology's state version: re-checking an
// unchanged topology is O(1). The memo is dropped whenever theta or the
// demand set changes. The utilization scan walks the router's ascending
// touched-circuit list when it is valid (only circuits actually carrying
// bound load), falling back to every circuit otherwise — verdicts are
// identical either way, including which violation is reported first.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/constraints/checker.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::constraints {

struct DemandCheckerParams {
  /// Maximum utilization rate theta (default 75%, §6.1).
  double max_utilization = 0.75;
  /// Funneling inflation for circuits incident to a switch that also has
  /// drained/absent circuits (0 disables).
  double funneling_margin = 0.0;
};

class DemandChecker : public Checker {
 public:
  /// The router must outlive the checker and be bound to the same topology
  /// object that check() will be called with. Construction (re)binds the
  /// demand set to the router; constructing another checker on the same
  /// router rebinds it, which stays correct but forfeits the routing cache
  /// for this checker's set.
  DemandChecker(traffic::EcmpRouter& router, traffic::DemandSet demands,
                DemandCheckerParams params = {});

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "demands"; }

  void set_demands(traffic::DemandSet demands) {
    demands_ = std::move(demands);
    router_.bind_demands(demands_);
    memo_valid_ = false;
  }
  const traffic::DemandSet& demands() const { return demands_; }
  const DemandCheckerParams& params() const { return params_; }
  void set_max_utilization(double theta) {
    params_.max_utilization = theta;
    memo_valid_ = false;
  }

  /// Peak utilization seen by the most recent check (diagnostics).
  double last_max_utilization() const { return last_max_utilization_; }

 private:
  Verdict evaluate(const topo::Topology& topo);

  traffic::EcmpRouter& router_;
  traffic::DemandSet demands_;
  DemandCheckerParams params_;
  traffic::LoadVector loads_;           // scratch
  std::vector<std::uint8_t> funneled_;  // scratch (per-switch)
  double last_max_utilization_ = 0.0;

  // Last verdict, keyed on (topology identity, state version). Sound by the
  // purity contract in checker.h.
  bool memo_valid_ = false;
  const topo::Topology* memo_topo_ = nullptr;
  std::uint64_t memo_version_ = 0;
  Verdict memo_verdict_;
  double memo_util_ = 0.0;
};

}  // namespace klotski::constraints
