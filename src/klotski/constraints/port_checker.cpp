#include "klotski/constraints/port_checker.h"

#include "klotski/obs/metrics.h"

namespace klotski::constraints {

Verdict PortChecker::check(const topo::Topology& topo) {
  if (memo_valid_ && memo_topo_ == &topo &&
      memo_version_ == topo.state_version()) {
    static obs::Counter& memo_hits =
        obs::Registry::global().counter("checker.port.memo_hits");
    memo_hits.inc();
    return memo_verdict_;
  }
  Verdict verdict = evaluate(topo);
  memo_valid_ = true;
  memo_topo_ = &topo;
  memo_version_ = topo.state_version();
  memo_verdict_ = verdict;
  return verdict;
}

Verdict PortChecker::evaluate(const topo::Topology& topo) const {
  for (const topo::Switch& s : topo.switches()) {
    if (!s.present()) continue;
    const int occupied = topo.occupied_ports(s.id);
    if (occupied > s.max_ports) {
      return Verdict::fail("switch " + s.name + " needs " +
                           std::to_string(occupied) + " ports but has " +
                           std::to_string(s.max_ports));
    }
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
