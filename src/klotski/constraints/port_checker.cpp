#include "klotski/constraints/port_checker.h"

namespace klotski::constraints {

Verdict PortChecker::check(const topo::Topology& topo) {
  for (const topo::Switch& s : topo.switches()) {
    if (!s.present()) continue;
    const int occupied = topo.occupied_ports(s.id);
    if (occupied > s.max_ports) {
      return Verdict::fail("switch " + s.name + " needs " +
                           std::to_string(occupied) + " ports but has " +
                           std::to_string(s.max_ports));
    }
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
