// Composite checker: evaluates cheap structural constraints first (ports,
// space/power), then the expensive demand constraints, short-circuiting on
// the first violation.
#pragma once

#include <vector>

#include "klotski/constraints/checker.h"

namespace klotski::constraints {

class CompositeChecker : public Checker {
 public:
  CompositeChecker() = default;

  /// Takes ownership; checkers run in insertion order.
  void add(CheckerPtr checker);

  Verdict check(const topo::Topology& topo) override;
  std::string name() const override { return "composite"; }

  std::size_t size() const { return checkers_.size(); }
  Checker& checker(std::size_t i) { return *checkers_[i]; }

  /// Number of check() invocations on this composite (satisfiability-check
  /// counter used by the evaluation, §6.4).
  long long checks_performed() const { return checks_performed_; }
  void reset_counter() { checks_performed_ = 0; }

 private:
  std::vector<CheckerPtr> checkers_;
  long long checks_performed_ = 0;
};

}  // namespace klotski::constraints
