#include "klotski/constraints/composite.h"

#include "klotski/obs/metrics.h"

namespace klotski::constraints {

void CompositeChecker::add(CheckerPtr checker) {
  checkers_.push_back(std::move(checker));
}

Verdict CompositeChecker::check(const topo::Topology& topo) {
  ++checks_performed_;
  static obs::Counter& checks =
      obs::Registry::global().counter("checker.composite.checks");
  checks.inc();
  for (const CheckerPtr& checker : checkers_) {
    Verdict verdict = checker->check(topo);
    if (!verdict.satisfied) return verdict;
  }
  return Verdict::ok();
}

}  // namespace klotski::constraints
