#include "klotski/npd/npd.h"

#include <stdexcept>

namespace klotski::npd {

std::string to_string(MigrationKind kind) {
  switch (kind) {
    case MigrationKind::kNone: return "none";
    case MigrationKind::kHgridV1ToV2: return "hgrid-v1-to-v2";
    case MigrationKind::kSswForklift: return "ssw-forklift";
    case MigrationKind::kDmag: return "dmag";
    case MigrationKind::kFlatForklift: return "flat-forklift";
    case MigrationKind::kReconfRewire: return "reconf-rewire";
  }
  return "?";
}

MigrationKind migration_kind_from_string(const std::string& text) {
  if (text == "none") return MigrationKind::kNone;
  if (text == "hgrid-v1-to-v2") return MigrationKind::kHgridV1ToV2;
  if (text == "ssw-forklift") return MigrationKind::kSswForklift;
  if (text == "dmag") return MigrationKind::kDmag;
  if (text == "flat-forklift") return MigrationKind::kFlatForklift;
  if (text == "reconf-rewire") return MigrationKind::kReconfRewire;
  throw std::invalid_argument("unknown migration kind: " + text);
}

topo::TopologyFamily family_of(MigrationKind kind) {
  switch (kind) {
    case MigrationKind::kFlatForklift: return topo::TopologyFamily::kFlat;
    case MigrationKind::kReconfRewire: return topo::TopologyFamily::kReconf;
    default: return topo::TopologyFamily::kClos;
  }
}

MigrationKind default_migration(topo::TopologyFamily family) {
  switch (family) {
    case topo::TopologyFamily::kFlat: return MigrationKind::kFlatForklift;
    case topo::TopologyFamily::kReconf:
      return MigrationKind::kReconfRewire;
    case topo::TopologyFamily::kClos: break;
  }
  return MigrationKind::kHgridV1ToV2;
}

namespace {

/// A mismatched document (e.g. a Clos fabric asking for a mesh rewire) is
/// rejected up front.
void check_family(const NpdDocument& doc) {
  if (doc.migration == MigrationKind::kNone) return;
  if (family_of(doc.migration) != doc.family) {
    throw std::invalid_argument(
        "npd: migration '" + to_string(doc.migration) +
        "' does not apply to family '" + topo::to_string(doc.family) + "'");
  }
}

}  // namespace

topo::Region build_region(const NpdDocument& doc) {
  switch (doc.family) {
    case topo::TopologyFamily::kFlat: return topo::build_flat(doc.flat);
    case topo::TopologyFamily::kReconf:
      return topo::build_reconf(doc.reconf);
    case topo::TopologyFamily::kClos: break;
  }
  return topo::build_region(doc.region);
}

migration::MigrationCase build_case(const NpdDocument& doc) {
  check_family(doc);
  switch (doc.migration) {
    case MigrationKind::kHgridV1ToV2: {
      auto params = doc.hgrid;
      params.demand = doc.demand;
      return migration::build_hgrid_migration(doc.region, params);
    }
    case MigrationKind::kSswForklift: {
      auto params = doc.ssw;
      params.demand = doc.demand;
      return migration::build_ssw_forklift(doc.region, params);
    }
    case MigrationKind::kDmag: {
      auto params = doc.dmag;
      params.demand = doc.demand;
      return migration::build_dmag_migration(doc.region, params);
    }
    case MigrationKind::kFlatForklift: {
      auto params = doc.flat_mig;
      params.demand = doc.demand;
      return migration::build_flat_migration(doc.flat, params);
    }
    case MigrationKind::kReconfRewire: {
      auto params = doc.reconf_mig;
      params.demand = doc.demand;
      return migration::build_reconf_migration(doc.reconf, params);
    }
    case MigrationKind::kNone:
      break;
  }
  throw std::invalid_argument(
      "build_case: NPD document has no migration section");
}

}  // namespace klotski::npd
