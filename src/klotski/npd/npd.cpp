#include "klotski/npd/npd.h"

#include <stdexcept>

namespace klotski::npd {

std::string to_string(MigrationKind kind) {
  switch (kind) {
    case MigrationKind::kNone: return "none";
    case MigrationKind::kHgridV1ToV2: return "hgrid-v1-to-v2";
    case MigrationKind::kSswForklift: return "ssw-forklift";
    case MigrationKind::kDmag: return "dmag";
  }
  return "?";
}

MigrationKind migration_kind_from_string(const std::string& text) {
  if (text == "none") return MigrationKind::kNone;
  if (text == "hgrid-v1-to-v2") return MigrationKind::kHgridV1ToV2;
  if (text == "ssw-forklift") return MigrationKind::kSswForklift;
  if (text == "dmag") return MigrationKind::kDmag;
  throw std::invalid_argument("unknown migration kind: " + text);
}

topo::Region build_region(const NpdDocument& doc) {
  return topo::build_region(doc.region);
}

migration::MigrationCase build_case(const NpdDocument& doc) {
  switch (doc.migration) {
    case MigrationKind::kHgridV1ToV2: {
      auto params = doc.hgrid;
      params.demand = doc.demand;
      return migration::build_hgrid_migration(doc.region, params);
    }
    case MigrationKind::kSswForklift: {
      auto params = doc.ssw;
      params.demand = doc.demand;
      return migration::build_ssw_forklift(doc.region, params);
    }
    case MigrationKind::kDmag: {
      auto params = doc.dmag;
      params.demand = doc.demand;
      return migration::build_dmag_migration(doc.region, params);
    }
    case MigrationKind::kNone:
      break;
  }
  throw std::invalid_argument(
      "build_case: NPD document has no migration section");
}

}  // namespace klotski::npd
