// JSON (de)serialization of NPD documents.
//
// Layout (six structural parts plus migration/demand sections):
//
//   {
//     "name": "...", "version": 1,
//     "fabric":  { "dcs": 2, "buildings": [ {pods, rsws_per_pod, planes,
//                  ssws_per_plane, rsw_fsw_links}, ... ] },
//     "hgrid":   { "grids": 2, "fadus_per_grid_per_dc": 2,
//                  "fauus_per_grid": 2, "generation": "V1",
//                  "mesh": "plane-aligned" },
//     "ma":      { },                          // reserved for DMAG regions
//     "eb":      { "count": 2 },
//     "dr":      { "count": 2 },
//     "bb":      { "ebbs": 2 },
//     "hardware": { "capacities": {...}, "port_slack": {...} },
//     "migration": { "type": "hgrid-v1-to-v2", ... },
//     "demand":  { "egress_frac": 0.3, ... }
//   }
//
// Unknown keys are rejected with a diagnostic (operators iterate on these
// files; silent typos would mean silently wrong migrations).
#pragma once

#include <string>

#include "klotski/json/json.h"
#include "klotski/npd/npd.h"

namespace klotski::npd {

/// Parses an NPD JSON document; throws json::JsonError / std::invalid_argument
/// with a message naming the offending key on malformed input.
NpdDocument from_json(const json::Value& value);

/// Parses from raw text.
NpdDocument parse_npd(const std::string& text);

/// Serializes; from_json(to_json(doc)) == doc for all representable docs.
json::Value to_json(const NpdDocument& doc);

/// Pretty-printed JSON text.
std::string dump_npd(const NpdDocument& doc);

}  // namespace klotski::npd
