#include "klotski/npd/npd_convert.h"

#include <stdexcept>
#include <string>
#include <unordered_map>

namespace klotski::npd {

using json::Array;
using json::Object;
using json::Value;

json::Value topology_to_json(const topo::Topology& topo) {
  Object root;
  Array switches;
  for (const topo::Switch& s : topo.switches()) {
    Object o;
    o["name"] = s.name;
    o["role"] = std::string(topo::to_string(s.role));
    o["gen"] = std::string(topo::to_string(s.gen));
    o["state"] = std::string(topo::to_string(s.state));
    o["max_ports"] = s.max_ports;
    Object loc;
    loc["dc"] = static_cast<std::int64_t>(s.loc.dc);
    loc["pod"] = static_cast<std::int64_t>(s.loc.pod);
    loc["plane"] = static_cast<std::int64_t>(s.loc.plane);
    loc["grid"] = static_cast<std::int64_t>(s.loc.grid);
    o["loc"] = Value(std::move(loc));
    switches.push_back(Value(std::move(o)));
  }
  root["switches"] = Value(std::move(switches));

  Array circuits;
  for (const topo::Circuit& c : topo.circuits()) {
    Object o;
    o["a"] = topo.sw(c.a).name;
    o["b"] = topo.sw(c.b).name;
    o["capacity_tbps"] = c.capacity_tbps;
    o["state"] = std::string(topo::to_string(c.state));
    circuits.push_back(Value(std::move(o)));
  }
  root["circuits"] = Value(std::move(circuits));
  return Value(std::move(root));
}

topo::Topology topology_from_json(const json::Value& value) {
  topo::Topology topo;
  std::unordered_map<std::string, topo::SwitchId> by_name;

  for (const Value& v : value.at("switches").as_array()) {
    const std::string name = v.at("name").as_string();
    topo::Location loc;
    if (const Value* l = v.as_object().find("loc")) {
      loc.dc = static_cast<std::int16_t>(l->get_int("dc", -1));
      loc.pod = static_cast<std::int16_t>(l->get_int("pod", -1));
      loc.plane = static_cast<std::int16_t>(l->get_int("plane", -1));
      loc.grid = static_cast<std::int16_t>(l->get_int("grid", -1));
    }
    const topo::SwitchId id = topo.add_switch(
        topo::switch_role_from_string(v.at("role").as_string()),
        topo::generation_from_string(v.get_string("gen", "V1")), loc,
        static_cast<std::int32_t>(v.get_int("max_ports", 64)),
        topo::element_state_from_string(v.get_string("state", "active")),
        name);
    if (!by_name.emplace(name, id).second) {
      throw std::invalid_argument("topology_from_json: duplicate switch '" +
                                  name + "'");
    }
  }

  for (const Value& v : value.at("circuits").as_array()) {
    const std::string a = v.at("a").as_string();
    const std::string b = v.at("b").as_string();
    const auto ia = by_name.find(a);
    const auto ib = by_name.find(b);
    if (ia == by_name.end() || ib == by_name.end()) {
      throw std::invalid_argument(
          "topology_from_json: circuit references unknown switch '" +
          (ia == by_name.end() ? a : b) + "'");
    }
    topo.add_circuit(
        ia->second, ib->second, v.at("capacity_tbps").as_double(),
        topo::element_state_from_string(v.get_string("state", "active")));
  }
  return topo;
}

}  // namespace klotski::npd
