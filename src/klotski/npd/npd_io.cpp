#include "klotski/npd/npd_io.h"

#include <stdexcept>
#include <unordered_set>

namespace klotski::npd {

namespace {

using json::Array;
using json::Object;
using json::Value;

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("npd: " + message);
}

/// Rejects keys outside `allowed` so that typos are loud.
void check_keys(const Value& v, const char* section,
                std::initializer_list<const char*> allowed) {
  std::unordered_set<std::string> set;
  for (const char* key : allowed) set.insert(key);
  for (const auto& [key, unused] : v.as_object()) {
    (void)unused;
    if (set.count(key) == 0) {
      fail(std::string("unknown key '") + key + "' in section " + section);
    }
  }
}

topo::FabricParams fabric_from_json(const Value& v) {
  check_keys(v, "fabric.buildings[]",
             {"pods", "rsws_per_pod", "planes", "ssws_per_plane",
              "rsw_fsw_links"});
  topo::FabricParams fab;
  fab.pods = static_cast<int>(v.get_int("pods", fab.pods));
  fab.rsws_per_pod =
      static_cast<int>(v.get_int("rsws_per_pod", fab.rsws_per_pod));
  fab.planes = static_cast<int>(v.get_int("planes", fab.planes));
  fab.ssws_per_plane =
      static_cast<int>(v.get_int("ssws_per_plane", fab.ssws_per_plane));
  fab.rsw_fsw_links =
      static_cast<int>(v.get_int("rsw_fsw_links", fab.rsw_fsw_links));
  return fab;
}

Value fabric_to_json(const topo::FabricParams& fab) {
  Object o;
  o["pods"] = fab.pods;
  o["rsws_per_pod"] = fab.rsws_per_pod;
  o["planes"] = fab.planes;
  o["ssws_per_plane"] = fab.ssws_per_plane;
  o["rsw_fsw_links"] = fab.rsw_fsw_links;
  return Value(std::move(o));
}

std::string mesh_to_string(topo::MeshPattern mesh) {
  return mesh == topo::MeshPattern::kPlaneAligned ? "plane-aligned"
                                                  : "interleaved";
}

topo::MeshPattern mesh_from_string(const std::string& text) {
  if (text == "plane-aligned") return topo::MeshPattern::kPlaneAligned;
  if (text == "interleaved") return topo::MeshPattern::kInterleaved;
  fail("unknown mesh pattern '" + text + "'");
}

std::vector<int> strides_from_json(const Value& v, const char* key) {
  std::vector<int> strides;
  for (const Value& s : v.as_array()) {
    strides.push_back(static_cast<int>(s.as_int()));
  }
  if (strides.empty()) fail(std::string(key) + " must not be empty");
  return strides;
}

Value strides_to_json(const std::vector<int>& strides) {
  Array a;
  for (const int s : strides) a.push_back(Value(static_cast<std::int64_t>(s)));
  return Value(std::move(a));
}

}  // namespace

NpdDocument from_json(const Value& root) {
  check_keys(root, "(root)",
             {"name", "version", "family", "fabric", "hgrid", "ma", "eb",
              "dr", "bb", "flat", "reconf", "hardware", "migration",
              "demand"});
  NpdDocument doc;
  doc.name = root.get_string("name", doc.name);
  doc.version = static_cast<int>(root.get_int("version", doc.version));
  doc.family =
      topo::family_from_string(root.get_string("family", "clos"));
  topo::RegionParams& rp = doc.region;

  if (const Value* flat = root.as_object().find("flat")) {
    check_keys(*flat, "flat",
               {"switches", "degree", "extra_links", "max_chord_span",
                "cap_tbps", "seed", "port_slack"});
    topo::FlatParams& fp = doc.flat;
    fp.switches = static_cast<int>(flat->get_int("switches", fp.switches));
    fp.degree = static_cast<int>(flat->get_int("degree", fp.degree));
    fp.extra_links =
        static_cast<int>(flat->get_int("extra_links", fp.extra_links));
    fp.max_chord_span =
        static_cast<int>(flat->get_int("max_chord_span", fp.max_chord_span));
    fp.cap_tbps = flat->get_double("cap_tbps", fp.cap_tbps);
    fp.seed = static_cast<std::uint64_t>(
        flat->get_int("seed", static_cast<std::int64_t>(fp.seed)));
    fp.port_slack =
        static_cast<int>(flat->get_int("port_slack", fp.port_slack));
  }

  if (const Value* reconf = root.as_object().find("reconf")) {
    check_keys(*reconf, "reconf",
               {"switches", "v1_strides", "v2_strides", "cap_tbps",
                "port_slack"});
    topo::ReconfParams& cp = doc.reconf;
    cp.switches = static_cast<int>(reconf->get_int("switches", cp.switches));
    if (const Value* v1 = reconf->as_object().find("v1_strides")) {
      cp.v1_strides = strides_from_json(*v1, "reconf.v1_strides");
    }
    if (const Value* v2 = reconf->as_object().find("v2_strides")) {
      cp.v2_strides = strides_from_json(*v2, "reconf.v2_strides");
    }
    cp.cap_tbps = reconf->get_double("cap_tbps", cp.cap_tbps);
    cp.port_slack =
        static_cast<int>(reconf->get_int("port_slack", cp.port_slack));
  }

  if (const Value* fabric = root.as_object().find("fabric")) {
    check_keys(*fabric, "fabric", {"dcs", "buildings"});
    rp.dcs = static_cast<int>(fabric->get_int("dcs", rp.dcs));
    if (const Value* buildings = fabric->as_object().find("buildings")) {
      rp.fabrics.clear();
      for (const Value& b : buildings->as_array()) {
        rp.fabrics.push_back(fabric_from_json(b));
      }
      if (rp.fabrics.empty()) fail("fabric.buildings must not be empty");
    }
  }

  if (const Value* hgrid = root.as_object().find("hgrid")) {
    check_keys(*hgrid, "hgrid",
               {"grids", "fadus_per_grid_per_dc", "fauus_per_grid",
                "generation", "mesh"});
    rp.grids = static_cast<int>(hgrid->get_int("grids", rp.grids));
    rp.fadus_per_grid_per_dc = static_cast<int>(
        hgrid->get_int("fadus_per_grid_per_dc", rp.fadus_per_grid_per_dc));
    rp.fauus_per_grid = static_cast<int>(
        hgrid->get_int("fauus_per_grid", rp.fauus_per_grid));
    rp.hgrid_gen = topo::generation_from_string(
        hgrid->get_string("generation", "V1"));
    rp.mesh = mesh_from_string(hgrid->get_string("mesh", "plane-aligned"));
  }

  if (const Value* ma = root.as_object().find("ma")) {
    check_keys(*ma, "ma", {});
  }
  if (const Value* eb = root.as_object().find("eb")) {
    check_keys(*eb, "eb", {"count"});
    rp.ebs = static_cast<int>(eb->get_int("count", rp.ebs));
  }
  if (const Value* dr = root.as_object().find("dr")) {
    check_keys(*dr, "dr", {"count"});
    rp.drs = static_cast<int>(dr->get_int("count", rp.drs));
  }
  if (const Value* bb = root.as_object().find("bb")) {
    check_keys(*bb, "bb", {"ebbs"});
    rp.ebbs = static_cast<int>(bb->get_int("ebbs", rp.ebbs));
  }

  if (const Value* hw = root.as_object().find("hardware")) {
    check_keys(*hw, "hardware", {"capacities", "port_slack"});
    if (const Value* caps = hw->as_object().find("capacities")) {
      check_keys(*caps, "hardware.capacities",
                 {"rsw_fsw", "fsw_ssw", "ssw_fadu", "fadu_fauu", "fauu_eb",
                  "fauu_dr", "eb_ebb", "dr_ebb"});
      rp.cap_rsw_fsw = caps->get_double("rsw_fsw", rp.cap_rsw_fsw);
      rp.cap_fsw_ssw = caps->get_double("fsw_ssw", rp.cap_fsw_ssw);
      rp.cap_ssw_fadu = caps->get_double("ssw_fadu", rp.cap_ssw_fadu);
      rp.cap_fadu_fauu = caps->get_double("fadu_fauu", rp.cap_fadu_fauu);
      rp.cap_fauu_eb = caps->get_double("fauu_eb", rp.cap_fauu_eb);
      rp.cap_fauu_dr = caps->get_double("fauu_dr", rp.cap_fauu_dr);
      rp.cap_eb_ebb = caps->get_double("eb_ebb", rp.cap_eb_ebb);
      rp.cap_dr_ebb = caps->get_double("dr_ebb", rp.cap_dr_ebb);
    }
    if (const Value* slack = hw->as_object().find("port_slack")) {
      check_keys(*slack, "hardware.port_slack",
                 {"fabric", "ssw", "agg", "eb", "ebb"});
      rp.port_slack_fabric = static_cast<int>(
          slack->get_int("fabric", rp.port_slack_fabric));
      rp.port_slack_ssw =
          static_cast<int>(slack->get_int("ssw", rp.port_slack_ssw));
      rp.port_slack_agg =
          static_cast<int>(slack->get_int("agg", rp.port_slack_agg));
      rp.port_slack_eb =
          static_cast<int>(slack->get_int("eb", rp.port_slack_eb));
      rp.port_slack_ebb =
          static_cast<int>(slack->get_int("ebb", rp.port_slack_ebb));
    }
  }

  if (const Value* mig = root.as_object().find("migration")) {
    check_keys(*mig, "migration",
               {"type", "v2_grids", "v2_fadus_per_grid_per_dc",
                "v2_fauus_per_grid", "fadu_chunks_per_grid_dc",
                "fauu_chunks_per_grid", "dc", "v2_capacity_factor",
                "blocks_per_plane", "ma_per_eb", "upgrade_fraction",
                "switch_chunks", "chunks_per_stride",
                "origin_utilization_cap", "block_scale",
                "use_operation_blocks"});
    doc.migration =
        migration_kind_from_string(mig->get_string("type", "none"));

    migration::PolicyParams policy;
    policy.block_scale = mig->get_double("block_scale", policy.block_scale);
    policy.use_operation_blocks =
        mig->get_bool("use_operation_blocks", policy.use_operation_blocks);

    doc.hgrid.v2_grids =
        static_cast<int>(mig->get_int("v2_grids", doc.hgrid.v2_grids));
    doc.hgrid.v2_fadus_per_grid_per_dc = static_cast<int>(mig->get_int(
        "v2_fadus_per_grid_per_dc", doc.hgrid.v2_fadus_per_grid_per_dc));
    doc.hgrid.v2_fauus_per_grid = static_cast<int>(
        mig->get_int("v2_fauus_per_grid", doc.hgrid.v2_fauus_per_grid));
    doc.hgrid.fadu_chunks_per_grid_dc = static_cast<int>(mig->get_int(
        "fadu_chunks_per_grid_dc", doc.hgrid.fadu_chunks_per_grid_dc));
    doc.hgrid.fauu_chunks_per_grid = static_cast<int>(
        mig->get_int("fauu_chunks_per_grid", doc.hgrid.fauu_chunks_per_grid));
    doc.hgrid.policy = policy;

    doc.ssw.dc = static_cast<int>(mig->get_int("dc", doc.ssw.dc));
    doc.ssw.v2_capacity_factor =
        mig->get_double("v2_capacity_factor", doc.ssw.v2_capacity_factor);
    doc.ssw.blocks_per_plane = static_cast<int>(
        mig->get_int("blocks_per_plane", doc.ssw.blocks_per_plane));
    doc.ssw.policy = policy;

    doc.dmag.ma_per_eb =
        static_cast<int>(mig->get_int("ma_per_eb", doc.dmag.ma_per_eb));
    doc.dmag.policy = policy;

    doc.flat_mig.upgrade_fraction =
        mig->get_double("upgrade_fraction", doc.flat_mig.upgrade_fraction);
    doc.flat_mig.v2_capacity_factor = mig->get_double(
        "v2_capacity_factor", doc.flat_mig.v2_capacity_factor);
    doc.flat_mig.switch_chunks = static_cast<int>(
        mig->get_int("switch_chunks", doc.flat_mig.switch_chunks));
    doc.flat_mig.origin_utilization_cap = mig->get_double(
        "origin_utilization_cap", doc.flat_mig.origin_utilization_cap);
    doc.flat_mig.policy = policy;

    doc.reconf_mig.chunks_per_stride = static_cast<int>(
        mig->get_int("chunks_per_stride", doc.reconf_mig.chunks_per_stride));
    doc.reconf_mig.origin_utilization_cap = mig->get_double(
        "origin_utilization_cap", doc.reconf_mig.origin_utilization_cap);
    doc.reconf_mig.policy = policy;
  }

  if (const Value* demand = root.as_object().find("demand")) {
    check_keys(*demand, "demand",
               {"egress_frac", "ingress_frac", "east_west_frac",
                "intra_dc_frac", "mesh_group_frac", "mesh_groups"});
    doc.demand.egress_frac =
        demand->get_double("egress_frac", doc.demand.egress_frac);
    doc.demand.ingress_frac =
        demand->get_double("ingress_frac", doc.demand.ingress_frac);
    doc.demand.east_west_frac =
        demand->get_double("east_west_frac", doc.demand.east_west_frac);
    doc.demand.intra_dc_frac =
        demand->get_double("intra_dc_frac", doc.demand.intra_dc_frac);
    doc.demand.mesh_group_frac =
        demand->get_double("mesh_group_frac", doc.demand.mesh_group_frac);
    doc.demand.mesh_groups = static_cast<int>(
        demand->get_int("mesh_groups", doc.demand.mesh_groups));
  }

  return doc;
}

NpdDocument parse_npd(const std::string& text) {
  return from_json(json::parse(text));
}

json::Value to_json(const NpdDocument& doc) {
  const topo::RegionParams& rp = doc.region;
  Object root;
  root["name"] = doc.name;
  root["version"] = doc.version;
  root["family"] = std::string(topo::to_string(doc.family));

  if (doc.family == topo::TopologyFamily::kFlat) {
    Object flat;
    flat["switches"] = doc.flat.switches;
    flat["degree"] = doc.flat.degree;
    flat["extra_links"] = doc.flat.extra_links;
    flat["max_chord_span"] = doc.flat.max_chord_span;
    flat["cap_tbps"] = doc.flat.cap_tbps;
    flat["seed"] = static_cast<std::int64_t>(doc.flat.seed);
    flat["port_slack"] = doc.flat.port_slack;
    root["flat"] = Value(std::move(flat));
  }
  if (doc.family == topo::TopologyFamily::kReconf) {
    Object reconf;
    reconf["switches"] = doc.reconf.switches;
    reconf["v1_strides"] = strides_to_json(doc.reconf.v1_strides);
    reconf["v2_strides"] = strides_to_json(doc.reconf.v2_strides);
    reconf["cap_tbps"] = doc.reconf.cap_tbps;
    reconf["port_slack"] = doc.reconf.port_slack;
    root["reconf"] = Value(std::move(reconf));
  }

  if (doc.family == topo::TopologyFamily::kClos) {
    Object fabric;
    fabric["dcs"] = rp.dcs;
    Array buildings;
    for (const topo::FabricParams& fab : rp.fabrics) {
      buildings.push_back(fabric_to_json(fab));
    }
    fabric["buildings"] = Value(std::move(buildings));
    root["fabric"] = Value(std::move(fabric));
  }
  if (doc.family == topo::TopologyFamily::kClos) {
    Object hgrid;
    hgrid["grids"] = rp.grids;
    hgrid["fadus_per_grid_per_dc"] = rp.fadus_per_grid_per_dc;
    hgrid["fauus_per_grid"] = rp.fauus_per_grid;
    hgrid["generation"] = std::string(topo::to_string(rp.hgrid_gen));
    hgrid["mesh"] = mesh_to_string(rp.mesh);
    root["hgrid"] = Value(std::move(hgrid));
    root["ma"] = Value(Object{});
    Object eb;
    eb["count"] = rp.ebs;
    root["eb"] = Value(std::move(eb));
    Object dr;
    dr["count"] = rp.drs;
    root["dr"] = Value(std::move(dr));
    Object bb;
    bb["ebbs"] = rp.ebbs;
    root["bb"] = Value(std::move(bb));
    Object caps;
    caps["rsw_fsw"] = rp.cap_rsw_fsw;
    caps["fsw_ssw"] = rp.cap_fsw_ssw;
    caps["ssw_fadu"] = rp.cap_ssw_fadu;
    caps["fadu_fauu"] = rp.cap_fadu_fauu;
    caps["fauu_eb"] = rp.cap_fauu_eb;
    caps["fauu_dr"] = rp.cap_fauu_dr;
    caps["eb_ebb"] = rp.cap_eb_ebb;
    caps["dr_ebb"] = rp.cap_dr_ebb;
    Object slack;
    slack["fabric"] = rp.port_slack_fabric;
    slack["ssw"] = rp.port_slack_ssw;
    slack["agg"] = rp.port_slack_agg;
    slack["eb"] = rp.port_slack_eb;
    slack["ebb"] = rp.port_slack_ebb;
    Object hw;
    hw["capacities"] = Value(std::move(caps));
    hw["port_slack"] = Value(std::move(slack));
    root["hardware"] = Value(std::move(hw));
  }
  {
    Object mig;
    mig["type"] = to_string(doc.migration);
    switch (doc.migration) {
      case MigrationKind::kHgridV1ToV2:
        mig["v2_grids"] = doc.hgrid.v2_grids;
        mig["v2_fadus_per_grid_per_dc"] = doc.hgrid.v2_fadus_per_grid_per_dc;
        mig["v2_fauus_per_grid"] = doc.hgrid.v2_fauus_per_grid;
        mig["fadu_chunks_per_grid_dc"] = doc.hgrid.fadu_chunks_per_grid_dc;
        mig["fauu_chunks_per_grid"] = doc.hgrid.fauu_chunks_per_grid;
        mig["block_scale"] = doc.hgrid.policy.block_scale;
        mig["use_operation_blocks"] = doc.hgrid.policy.use_operation_blocks;
        break;
      case MigrationKind::kSswForklift:
        mig["dc"] = doc.ssw.dc;
        mig["v2_capacity_factor"] = doc.ssw.v2_capacity_factor;
        mig["blocks_per_plane"] = doc.ssw.blocks_per_plane;
        mig["block_scale"] = doc.ssw.policy.block_scale;
        mig["use_operation_blocks"] = doc.ssw.policy.use_operation_blocks;
        break;
      case MigrationKind::kDmag:
        mig["ma_per_eb"] = doc.dmag.ma_per_eb;
        mig["block_scale"] = doc.dmag.policy.block_scale;
        mig["use_operation_blocks"] = doc.dmag.policy.use_operation_blocks;
        break;
      case MigrationKind::kFlatForklift:
        mig["upgrade_fraction"] = doc.flat_mig.upgrade_fraction;
        mig["v2_capacity_factor"] = doc.flat_mig.v2_capacity_factor;
        mig["switch_chunks"] = doc.flat_mig.switch_chunks;
        mig["origin_utilization_cap"] = doc.flat_mig.origin_utilization_cap;
        mig["block_scale"] = doc.flat_mig.policy.block_scale;
        mig["use_operation_blocks"] =
            doc.flat_mig.policy.use_operation_blocks;
        break;
      case MigrationKind::kReconfRewire:
        mig["chunks_per_stride"] = doc.reconf_mig.chunks_per_stride;
        mig["origin_utilization_cap"] =
            doc.reconf_mig.origin_utilization_cap;
        mig["block_scale"] = doc.reconf_mig.policy.block_scale;
        mig["use_operation_blocks"] =
            doc.reconf_mig.policy.use_operation_blocks;
        break;
      case MigrationKind::kNone:
        break;
    }
    root["migration"] = Value(std::move(mig));
  }
  {
    Object demand;
    demand["egress_frac"] = doc.demand.egress_frac;
    demand["ingress_frac"] = doc.demand.ingress_frac;
    demand["east_west_frac"] = doc.demand.east_west_frac;
    demand["intra_dc_frac"] = doc.demand.intra_dc_frac;
    demand["mesh_group_frac"] = doc.demand.mesh_group_frac;
    demand["mesh_groups"] = doc.demand.mesh_groups;
    root["demand"] = Value(std::move(demand));
  }
  return Value(std::move(root));
}

std::string dump_npd(const NpdDocument& doc) {
  return json::dump(to_json(doc), 2);
}

}  // namespace klotski::npd
