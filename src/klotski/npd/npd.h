// NPD — Network Product Definition (§5).
//
// NPD is the generic data structure used to define high-level properties of
// network topologies; it is the input format of the EDP-Lite pipeline. An
// NPD document describes a DCN in six parts — Fabric, HGRID, MA, EB, DR,
// BB — each recording switches by role and position and how they
// interconnect, plus migration-phase and hardware information.
//
// The on-disk encoding is JSON (see npd_io.h). The six parts map onto
// topo::RegionParams; the migration section selects and parameterizes one
// of the §2.4 migration types; the demand section parameterizes the traffic
// generator.
#pragma once

#include <string>

#include "klotski/migration/family_tasks.h"
#include "klotski/migration/task_builder.h"
#include "klotski/topo/builder.h"
#include "klotski/topo/families.h"
#include "klotski/traffic/generator.h"

namespace klotski::npd {

enum class MigrationKind {
  kNone,
  kHgridV1ToV2,
  kSswForklift,
  kDmag,
  kFlatForklift,
  kReconfRewire,
};

std::string to_string(MigrationKind kind);
MigrationKind migration_kind_from_string(const std::string& text);

/// The topology family a migration kind applies to (kNone maps to Clos);
/// build_case rejects documents whose family disagrees.
topo::TopologyFamily family_of(MigrationKind kind);

/// The canonical migration kind of a family (HGRID V1->V2 for Clos, the
/// partial forklift for flat, the mesh rewire for reconf).
MigrationKind default_migration(topo::TopologyFamily family);

struct NpdDocument {
  std::string name = "unnamed";
  int version = 1;

  /// Topology family. Clos documents use the six structural parts below;
  /// flat documents use the `flat` section; reconf documents `reconf`.
  topo::TopologyFamily family = topo::TopologyFamily::kClos;

  /// The six structural parts, folded into the region parameters.
  topo::RegionParams region;
  topo::FlatParams flat;
  topo::ReconfParams reconf;

  /// Migration phase information.
  MigrationKind migration = MigrationKind::kNone;
  migration::HgridMigrationParams hgrid;
  migration::SswForkliftParams ssw;
  migration::DmagMigrationParams dmag;
  migration::FlatMigrationParams flat_mig;
  migration::ReconfMigrationParams reconf_mig;

  /// Forecasted traffic parameters.
  traffic::DemandGenParams demand;
};

/// Builds the region described by the document (no migration staging).
topo::Region build_region(const NpdDocument& doc);

/// Builds the full migration case; throws std::invalid_argument when the
/// document has migration = kNone.
migration::MigrationCase build_case(const NpdDocument& doc);

}  // namespace klotski::npd
