// Full-fidelity topology <-> JSON conversion.
//
// While the NPD document (npd.h) is the compact generative description, the
// pipeline also exchanges *explicit* topologies — e.g. the per-phase
// intermediate topologies attached to an exported migration plan, or
// snapshots shipped to downstream audit tooling. This module serializes a
// topo::Topology losslessly.
#pragma once

#include "klotski/json/json.h"
#include "klotski/topo/topology.h"

namespace klotski::npd {

/// Serializes switches (with role/gen/location/ports/state/name) and
/// circuits (endpoints by switch name, capacity, state).
json::Value topology_to_json(const topo::Topology& topo);

/// Inverse of topology_to_json; throws std::invalid_argument on malformed
/// documents (unknown roles, dangling endpoint names, ...).
topo::Topology topology_from_json(const json::Value& value);

}  // namespace klotski::npd
