#include "klotski/json/canonical.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "klotski/util/hash.h"

namespace klotski::json {

namespace {

/// Integral doubles within the exactly-representable window collapse to the
/// integer spelling, so parse("2.0") and parse("2") canonicalize alike —
/// the same equivalence Value::operator== applies.
void canonical_number(const Value& v, std::string& out) {
  if (v.type() == Value::Type::kInt) {
    out += std::to_string(v.as_int());
    return;
  }
  const double d = v.as_double();
  if (d == 0.0) {  // also normalizes -0.0
    out.push_back('0');
    return;
  }
  if (std::nearbyint(d) == d && std::fabs(d) <= 9007199254740992.0) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), d);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void canonical_value(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      canonical_number(v, out);
      break;
    case Value::Type::kString:
      detail::append_escaped_string(v.as_string(), out);
      break;
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        canonical_value(item, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const Object& obj = v.as_object();
      std::vector<std::pair<const std::string*, const Value*>> items;
      items.reserve(obj.size());
      for (const auto& [key, value] : obj) {
        items.emplace_back(&key, &value);
      }
      std::sort(items.begin(), items.end(),
                [](const auto& a, const auto& b) { return *a.first < *b.first; });
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : items) {
        if (!first) out.push_back(',');
        first = false;
        detail::append_escaped_string(*key, out);
        out.push_back(':');
        canonical_value(*value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string canonical_dump(const Value& value) {
  std::string out;
  canonical_value(value, out);
  return out;
}

std::string content_hash(const Value& value) {
  return util::stable_digest_hex(canonical_dump(value));
}

}  // namespace klotski::json
