#include "klotski/json/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace klotski::json {

// ---------------------------------------------------------------------------
// Object

Value& Object::operator[](const std::string& key) {
  if (Value* existing = find(key)) return *existing;
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Value

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    case 4: return Type::kString;
    case 5: return Type::kArray;
    default: return Type::kObject;
  }
}

namespace {
[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null",   "bool",  "int",   "double",
                                "string", "array", "object"};
  throw JsonError(std::string("json: expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  type_error("bool", type());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    if (std::floor(*d) == *d) return static_cast<std::int64_t>(*d);
  }
  type_error("int", type());
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  type_error("number", type());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_error("string", type());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_error("array", type());
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_error("array", type());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_error("object", type());
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_error("object", type());
}

const Value& Value::at(const std::string& key) const {
  const Value* v = as_object().find(key);
  if (v == nullptr) throw JsonError("json: missing key '" + key + "'");
  return *v;
}

std::int64_t Value::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_int();
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_double();
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_string();
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_bool();
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // int/double cross-comparison for numeric equality.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type()) {
    case Type::kNull: return true;
    case Type::kBool: return as_bool() == other.as_bool();
    case Type::kInt: return as_int() == other.as_int();
    case Type::kDouble: return as_double() == other.as_double();
    case Type::kString: return as_string() == other.as_string();
    case Type::kArray: {
      const Array& a = as_array();
      const Array& b = other.as_array();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
    case Type::kObject: {
      const Object& a = as_object();
      const Object& b = other.as_object();
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        const Value* bv = b.find(k);
        if (bv == nullptr || !(v == *bv)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    // Report 1-based line/column for readable NPD diagnostics.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("json parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(column) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[key] = parse_value();
      skip_whitespace();
      const char next = advance();
      if (next == '}') return Value(std::move(obj));
      if (next != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char next = advance();
      if (next == ']') return Value(std::move(arr));
      if (next != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = parse_hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF; the
              // pair encodes one astral code point (RFC 8259 §7).
              if (advance() != '\\' || advance() != 'u') {
                fail("high surrogate not followed by \\u escape");
              }
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                fail("high surrogate not followed by low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("lone low surrogate in \\u escape");
            }
            append_utf8(cp, out);
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside exponents, but strtod rejects bad forms.
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    // std::from_chars is locale-independent; strtod/strtoll honor
    // LC_NUMERIC and would mis-parse "1.5" under a comma-decimal locale.
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && ptr == last) return Value(v);
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

namespace {

/// Appends "\uXXXX" for `unit` (a UTF-16 code unit) to `out`.
void append_u16_escape(unsigned unit, std::string& out) {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "\\u%04x", unit);
  out += buffer;
}

}  // namespace
}  // namespace

namespace detail {

void append_escaped_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const unsigned char uc = static_cast<unsigned char>(c);
        if (uc < 0x20) {
          append_u16_escape(uc, out);
          break;
        }
        // Astral code points (4-byte UTF-8) are escaped as a UTF-16
        // surrogate pair, which keeps the serialized form ASCII-safe and
        // parses back to the identical 4-byte sequence. BMP sequences
        // pass through verbatim.
        if (uc >= 0xF0 && uc <= 0xF4 && i + 3 < s.size()) {
          const unsigned char b1 = static_cast<unsigned char>(s[i + 1]);
          const unsigned char b2 = static_cast<unsigned char>(s[i + 2]);
          const unsigned char b3 = static_cast<unsigned char>(s[i + 3]);
          if ((b1 & 0xC0) == 0x80 && (b2 & 0xC0) == 0x80 &&
              (b3 & 0xC0) == 0x80) {
            const unsigned cp = ((uc & 0x07u) << 18) | ((b1 & 0x3Fu) << 12) |
                                ((b2 & 0x3Fu) << 6) | (b3 & 0x3Fu);
            if (cp >= 0x10000 && cp <= 0x10FFFF) {
              append_u16_escape(0xD800 + ((cp - 0x10000) >> 10), out);
              append_u16_escape(0xDC00 + ((cp - 0x10000) & 0x3FF), out);
              i += 3;
              break;
            }
          }
        }
        out.push_back(c);
      }
    }
  }
  out.push_back('"');
}

}  // namespace detail

namespace {

void dump_string(const std::string& s, std::string& out) {
  detail::append_escaped_string(s, out);
}

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt:
      out += std::to_string(v.as_int());
      break;
    case Value::Type::kDouble: {
      // Shortest round-trip form, locale-independent ("." regardless of
      // LC_NUMERIC, unlike %.17g).
      char buffer[32];
      const auto [ptr, ec] =
          std::to_chars(buffer, buffer + sizeof(buffer), v.as_double());
      out.append(buffer, static_cast<std::size_t>(ptr - buffer));
      break;
    }
    case Value::Type::kString:
      dump_string(v.as_string(), out);
      break;
    case Value::Type::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        dump_value(arr[i], indent, depth + 1, out);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        dump_string(key, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_value(value, indent, depth + 1, out);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string dump(const Value& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  return out;
}

}  // namespace klotski::json
