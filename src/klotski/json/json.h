// Minimal JSON value model + recursive-descent parser + writer.
//
// Used by the NPD (Network Product Definition) format and plan export.
// Scope: RFC 8259 subset sufficient for NPD — objects, arrays, strings with
// escape sequences (incl. \uXXXX for BMP code points), numbers, booleans,
// null. Object key order is preserved to keep serialized NPD files diffable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace klotski::json {

class Value;

/// Object preserving insertion order: vector of (key, value) plus an index.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  Value* find(const std::string& key);
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> items_;
};

using Array = std::vector<Value>;

/// Thrown on parse errors and wrong-type accesses.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const {
    return type() == Type::kInt || type() == Type::kDouble;
  }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw JsonError on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;   // accepts integral doubles
  double as_double() const;      // accepts ints
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object field access with a JSON-pointer-ish error message.
  const Value& at(const std::string& key) const;
  /// Optional lookups returning a fallback on missing key.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  bool operator==(const Value& other) const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parses a complete JSON document; trailing non-space input is an error.
Value parse(std::string_view text);

/// Serializes. indent < 0 => compact single line; otherwise pretty-printed.
std::string dump(const Value& value, int indent = -1);

namespace detail {
/// Appends `s` as a quoted JSON string with the writer's escaping rules
/// (shared by dump() and canonical_dump() so the two forms never disagree
/// on string bytes).
void append_escaped_string(std::string_view s, std::string& out);
}  // namespace detail

}  // namespace klotski::json
