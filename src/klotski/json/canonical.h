// Canonical JSON form + content hashing for content-addressed caching.
//
// Two JSON documents that mean the same thing must hash the same even when
// their textual forms differ: object key order, insignificant whitespace,
// and number spelling ("2" vs "2.0", "1e1" vs "10") are all presentation,
// not content. canonical_dump() erases exactly those differences:
//
//   * objects are emitted with keys sorted byte-wise,
//   * no whitespace anywhere,
//   * integral doubles are emitted as integers (matching Value::operator==,
//     which already treats 2 == 2.0), all other doubles in shortest
//     round-trip std::to_chars form (locale-independent),
//   * strings use the same escaping as dump(), so the two writers can never
//     disagree on string bytes.
//
// content_hash() is util::StableDigest over the canonical form: bit-stable
// across runs, processes, and platforms. The serve layer's plan cache keys
// (in memory and on disk) are these hashes — see DESIGN.md §9.
#pragma once

#include <string>

#include "klotski/json/json.h"

namespace klotski::json {

/// Serializes `value` in canonical form (see file comment). The result is
/// equal for any two Values that compare equal with operator==, and differs
/// whenever any value differs.
std::string canonical_dump(const Value& value);

/// 32-hex-character stable digest of canonical_dump(value).
std::string content_hash(const Value& value);

}  // namespace klotski::json
