#include "klotski/whatif/whatif.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "klotski/constraints/demand_checker.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"
#include "klotski/sim/fault_script.h"
#include "klotski/traffic/forecast.h"
#include "klotski/util/hash.h"
#include "klotski/util/rng.h"
#include "klotski/util/thread_budget.h"

namespace klotski::whatif {

namespace {

/// Salt separating the what-if trajectory seed stream from every other
/// consumer of the base seed (chaos scripts, traffic generators).
constexpr std::uint64_t kTrajectorySalt = 0x57A7'1F00'D001ULL;
constexpr std::uint64_t kGrowthSalt = 0x6807'7801ULL;

/// One worker's validation context: its own case (trajectories materialize
/// phases onto the topology), checker stack and evaluator. The verdict
/// cache stays off — it is keyed on count vectors only, which is unsound
/// when the demand set changes under the same counts, exactly what every
/// trajectory step does.
struct Validator {
  migration::MigrationCase mig;
  pipeline::CheckerBundle bundle;
  constraints::DemandChecker* demand_checker = nullptr;
  std::unique_ptr<core::StateEvaluator> evaluator;

  Validator(const CaseFactory& factory, const pipeline::CheckerConfig& config)
      : mig(factory()) {
    bundle = pipeline::make_standard_checker(mig.task, config);
    demand_checker = dynamic_cast<constraints::DemandChecker*>(
        &bundle.checker->checker(bundle.checker->size() - 1));
    if (demand_checker == nullptr) {
      throw std::logic_error(
          "whatif: standard checker stack has no demand checker");
    }
    evaluator = std::make_unique<core::StateEvaluator>(
        mig.task, *bundle.checker, /*use_cache=*/false);
  }
};

/// The sampled future of trajectory `index`: a Forecaster over the task's
/// base demands with per-trajectory growth, surge windows and forecast-error
/// windows. Pure function of (params.seed, index, task shape).
traffic::Forecaster sample_future(const WhatIfParams& params, int index,
                                  const migration::MigrationTask& task,
                                  int num_phases) {
  const std::uint64_t seed = util::hash_combine(
      util::hash_combine(params.seed, kTrajectorySalt),
      static_cast<std::uint64_t>(index));

  util::Rng growth_rng(util::hash_combine(seed, kGrowthSalt));
  const double growth =
      growth_rng.uniform_real(params.growth_min, params.growth_max);

  sim::FaultScriptParams script_params;
  script_params.horizon = std::max(8, num_phases + 2);
  script_params.expected_phases = std::max(1, num_phases);
  // Demand events only: the what-if question is about traffic futures, not
  // element faults (those are the chaos engine's jurisdiction).
  script_params.circuit_degrades = 0;
  script_params.circuit_failures = 0;
  script_params.switch_drains = 0;
  script_params.step_failures = 0;
  script_params.demand_events = params.surges;
  script_params.forecast_errors = params.forecast_errors;
  script_params.surge_factor_min = params.surge_factor_min;
  script_params.surge_factor_max = params.surge_factor_max;
  script_params.bias_factor_min = params.bias_factor_min;
  script_params.bias_factor_max = params.bias_factor_max;
  const sim::FaultScript script =
      sim::make_fault_script(seed, task, script_params);

  traffic::Forecaster forecaster(task.demands, growth);
  for (const traffic::SurgeEvent& surge : script.surges) {
    forecaster.add_surge(surge);
  }
  for (const traffic::ForecastBias& bias : script.biases) {
    forecaster.add_bias(bias);
  }
  return forecaster;
}

/// Validates every plan phase against one sampled future. Phase p is
/// checked under the demand set of step p + 1 (step 0 is the original
/// network under the base demands, already validated by the plan's audit).
/// Stops at the first violation — that is where execution would halt and
/// hand off to the replanning loop.
TrajectoryOutcome run_trajectory(const WhatIfParams& params, int index,
                                 Validator& v,
                                 const std::vector<core::Phase>& phases) {
  obs::Span span("whatif/trajectory");
  migration::MigrationTask& task = v.mig.task;
  const double theta = params.checker.demand.max_utilization;
  const double base_volume = traffic::total_volume(task.demands);
  const traffic::Forecaster future =
      sample_future(params, index, task, static_cast<int>(phases.size()));

  TrajectoryOutcome out;
  out.completed = true;
  out.safe = true;
  out.min_headroom = theta;
  out.phase_utilization.reserve(phases.size());

  core::CountVector done(
      static_cast<std::size_t>(task.num_action_types()), 0);
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const int step = static_cast<int>(p) + 1;
    traffic::DemandSet demands = future.forecast_at_step(step);
    const double volume = traffic::total_volume(demands);
    v.demand_checker->set_demands(std::move(demands));

    done[static_cast<std::size_t>(phases[p].type)] +=
        static_cast<std::int32_t>(phases[p].block_indices.size());
    const bool ok = v.evaluator->feasible(done);
    const double util = v.demand_checker->last_max_utilization();
    out.phase_utilization.push_back(util);
    if (!ok) {
      out.safe = false;
      out.first_break_phase = static_cast<int>(p);
      out.break_utilization = util;
      out.break_multiplier =
          base_volume > 0.0 ? volume / base_volume : 0.0;
      // The demand checker scans utilization only after every demand
      // routed; a failure that never exceeded theta is a no-path demand.
      out.unroutable = util <= theta;
      if (!out.unroutable) {
        out.min_headroom = std::min(out.min_headroom, theta - util);
      }
      break;
    }
    out.min_headroom = std::min(out.min_headroom, theta - util);
  }
  return out;
}

/// True when every phase (and the starting network) stays safe under the
/// base demands scaled by `multiplier`.
bool plan_safe_at(Validator& v, const std::vector<core::Phase>& phases,
                  const traffic::DemandSet& base, double multiplier) {
  v.demand_checker->set_demands(traffic::scaled(base, multiplier));
  core::CountVector done(
      static_cast<std::size_t>(v.mig.task.num_action_types()), 0);
  if (!v.evaluator->feasible(done)) return false;
  for (const core::Phase& phase : phases) {
    done[static_cast<std::size_t>(phase.type)] +=
        static_cast<std::int32_t>(phase.block_indices.size());
    if (!v.evaluator->feasible(done)) return false;
  }
  return true;
}

/// Bisects the largest uniform demand multiplier the whole plan tolerates.
/// Fixed iteration count, serial: the result is bit-stable.
void margin_search(const CaseFactory& factory, const WhatIfParams& params,
                   const std::vector<core::Phase>& phases,
                   WhatIfReport& report) {
  obs::Span span("whatif/margin_search");
  Validator v(factory, params.checker);
  const traffic::DemandSet base = v.mig.task.demands;

  if (plan_safe_at(v, phases, base, params.margin_max)) {
    report.safe_growth_margin = params.margin_max;
    report.margin_saturated = true;
    return;
  }
  double lo = 1.0;
  double hi = params.margin_max;
  if (!plan_safe_at(v, phases, base, 1.0)) {
    // The plan is already unsafe under its own forecast (it was planned
    // under different knobs than this sweep validates with); bracket below.
    lo = 0.0;
    hi = 1.0;
  }
  for (int i = 0; i < params.margin_iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (plan_safe_at(v, phases, base, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  report.safe_growth_margin = lo;
  report.margin_saturated = false;
}

void validate_params(const WhatIfParams& params) {
  if (params.trajectories < 1) {
    throw std::invalid_argument("whatif: trajectories must be >= 1");
  }
  if (params.growth_min < -1.0 || params.growth_max < params.growth_min) {
    throw std::invalid_argument("whatif: bad growth range");
  }
  if (params.surges < 0 || params.forecast_errors < 0) {
    throw std::invalid_argument("whatif: event counts must be >= 0");
  }
  if (params.surge_factor_min <= 0.0 ||
      params.surge_factor_max < params.surge_factor_min) {
    throw std::invalid_argument("whatif: bad surge factor range");
  }
  if (params.bias_factor_min <= 0.0 ||
      params.bias_factor_max < params.bias_factor_min) {
    throw std::invalid_argument("whatif: bad bias factor range");
  }
  if (params.margin_iterations < 1 || params.margin_max < 1.0) {
    throw std::invalid_argument("whatif: bad margin search knobs");
  }
}

}  // namespace

WhatIfReport run_whatif(const CaseFactory& factory, const core::Plan& plan,
                        const WhatIfParams& params,
                        const std::atomic<bool>* stop) {
  validate_params(params);
  obs::Span sweep_span("whatif/sweep");
  obs::Registry::global().counter("whatif.runs").inc();

  const std::vector<core::Phase> phases = plan.phases();
  const int num_trajectories = params.trajectories;
  std::vector<TrajectoryOutcome> outcomes(
      static_cast<std::size_t>(num_trajectories));

  // Workers claim trajectory indices from the shared counter and store
  // results by index; per-worker state (case, checker stack, evaluator) is
  // fully private, so the outcome vector is a pure function of the seed.
  const util::ThreadBudget budget = util::split_thread_budget(
      params.threads, params.checker.router_threads, num_trajectories);
  pipeline::CheckerConfig worker_config = params.checker;
  worker_config.router_threads = budget.inner;

  std::atomic<int> next{0};
  static obs::Counter& trajectories_counter =
      obs::Registry::global().counter("whatif.trajectories");
  const auto worker = [&]() {
    Validator v(factory, worker_config);
    for (;;) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      const int i = next.fetch_add(1);
      if (i >= num_trajectories) return;
      outcomes[static_cast<std::size_t>(i)] =
          run_trajectory(params, i, v, phases);
      trajectories_counter.inc();
    }
  };
  if (budget.outer <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(budget.outer));
    for (int i = 0; i < budget.outer; ++i) workers.emplace_back(worker);
    for (std::thread& w : workers) w.join();
  }

  // Serial aggregation in index order: every fold over doubles happens in
  // the same sequence at any thread count.
  WhatIfReport report;
  report.trajectories = num_trajectories;
  report.seed = params.seed;
  report.break_histogram.assign(std::max<std::size_t>(phases.size(), 1), 0);
  const double theta = params.checker.demand.max_utilization;
  {
    migration::MigrationCase label_case = factory();
    for (std::size_t p = 0; p < phases.size(); ++p) {
      PhaseStats row;
      row.phase = static_cast<int>(p);
      row.action =
          label_case.task
              .action_types[static_cast<std::size_t>(phases[p].type)]
              .label;
      row.blocks = static_cast<int>(phases[p].block_indices.size());
      row.worst_utilization = 0.0;
      row.min_headroom = theta;
      report.phases.push_back(std::move(row));
    }
  }
  for (const TrajectoryOutcome& t : outcomes) {
    if (!t.completed) {
      report.stopped = true;
      continue;
    }
    ++report.trajectories_run;
    for (std::size_t p = 0; p < t.phase_utilization.size(); ++p) {
      PhaseStats& row = report.phases[p];
      ++row.evaluated;
      const bool broke_here =
          !t.safe && t.first_break_phase == static_cast<int>(p);
      // An unroutable break reports utilization 0, which says nothing
      // about headroom; keep it out of the worst-case fold.
      if (!(broke_here && t.unroutable)) {
        row.worst_utilization =
            std::max(row.worst_utilization, t.phase_utilization[p]);
        row.min_headroom =
            std::min(row.min_headroom, theta - t.phase_utilization[p]);
      }
      if (broke_here) ++row.unsafe;
    }
    if (!t.safe) {
      ++report.unsafe;
      if (t.unroutable) ++report.unroutable;
      ++report.break_histogram[static_cast<std::size_t>(
          std::max(0, t.first_break_phase))];
      if (report.first_break_phase < 0 ||
          t.break_multiplier < report.first_break_multiplier) {
        report.first_break_phase = t.first_break_phase;
        report.first_break_multiplier = t.break_multiplier;
      }
    }
  }
  report.safe_fraction =
      report.trajectories_run > 0
          ? static_cast<double>(report.trajectories_run - report.unsafe) /
                static_cast<double>(report.trajectories_run)
          : 1.0;
  obs::Registry::global().counter("whatif.unsafe").inc(report.unsafe);
  if (report.unroutable > 0) {
    obs::Registry::global()
        .counter("whatif.unroutable")
        .inc(report.unroutable);
  }

  margin_search(factory, params, phases, report);
  return report;
}

json::Value report_to_json(const WhatIfReport& report,
                           const WhatIfParams& params) {
  json::Object doc;
  doc["schema"] = "klotski.whatif.v1";
  doc["trajectories"] = report.trajectories;
  doc["trajectories_run"] = report.trajectories_run;
  doc["seed"] = static_cast<std::int64_t>(report.seed);
  if (report.stopped) doc["stopped"] = true;

  json::Object sampling;
  sampling["theta"] = params.checker.demand.max_utilization;
  sampling["growth_min"] = params.growth_min;
  sampling["growth_max"] = params.growth_max;
  sampling["surges"] = params.surges;
  sampling["forecast_errors"] = params.forecast_errors;
  sampling["surge_factor_min"] = params.surge_factor_min;
  sampling["surge_factor_max"] = params.surge_factor_max;
  sampling["bias_factor_min"] = params.bias_factor_min;
  sampling["bias_factor_max"] = params.bias_factor_max;
  doc["sampling"] = json::Value(std::move(sampling));

  doc["safe_fraction"] = report.safe_fraction;
  doc["unsafe"] = report.unsafe;
  doc["unroutable"] = report.unroutable;
  if (report.first_break_phase >= 0) {
    json::Object first_break;
    first_break["phase"] = report.first_break_phase;
    first_break["multiplier"] = report.first_break_multiplier;
    doc["first_break"] = json::Value(std::move(first_break));
  }
  json::Array histogram;
  for (std::size_t p = 0; p < report.break_histogram.size(); ++p) {
    if (report.break_histogram[p] == 0) continue;
    json::Object bin;
    bin["phase"] = static_cast<std::int64_t>(p);
    bin["count"] = static_cast<std::int64_t>(report.break_histogram[p]);
    histogram.push_back(json::Value(std::move(bin)));
  }
  doc["break_histogram"] = std::move(histogram);

  json::Array phase_rows;
  for (const PhaseStats& row : report.phases) {
    json::Object out;
    out["phase"] = row.phase;
    out["action"] = row.action;
    out["blocks"] = row.blocks;
    out["evaluated"] = static_cast<std::int64_t>(row.evaluated);
    out["unsafe"] = static_cast<std::int64_t>(row.unsafe);
    out["worst_utilization"] = row.worst_utilization;
    out["min_headroom"] = row.min_headroom;
    phase_rows.push_back(json::Value(std::move(out)));
  }
  doc["phases"] = std::move(phase_rows);

  doc["safe_growth_margin"] = report.safe_growth_margin;
  doc["margin_saturated"] = report.margin_saturated;
  return json::Value(std::move(doc));
}

std::string report_text(const WhatIfReport& report,
                        const WhatIfParams& params) {
  return json::dump(report_to_json(report, params), 2) + "\n";
}

}  // namespace klotski::whatif
