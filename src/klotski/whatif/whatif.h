// What-if capacity engine: Monte Carlo robustness sweeps over a finished
// plan (ROADMAP "what-if capacity engine"; the proactive counterpart of the
// §7.1 replanning loop).
//
// The planner commits to a forecast, but a migration runs for weeks while
// traffic grows and forecasts drift (§7.2). Before execution starts, the
// what-if engine samples N demand futures — per-trajectory organic growth,
// surge windows, and forecast-error windows, all drawn from the same
// generators the chaos engine uses (sim::make_fault_script demand events
// composed through traffic::Forecaster) — and re-validates every plan phase
// against each future with the incremental StateEvaluator/ECMP fast path.
// The report says what fraction of futures the plan survives, which phase
// breaks first and under what demand multiplier, the worst-case headroom
// per phase, and the uniform demand multiplier the plan provably tolerates
// (binary-searched "safe growth margin").
//
// Determinism contract: the report is a pure function of (inputs, seed, N)
// — trajectory i's future is derived from hash_combine(seed, i) alone,
// workers claim trajectory indices from an atomic counter but store results
// by index, and aggregation runs serially in index order. Reports are
// byte-identical at any thread count, which tier-1 asserts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "klotski/core/plan.h"
#include "klotski/json/json.h"
#include "klotski/migration/task.h"
#include "klotski/pipeline/edp.h"

namespace klotski::whatif {

struct WhatIfParams {
  /// Number of sampled demand futures.
  int trajectories = 100;
  std::uint64_t seed = 0;
  /// Sweep worker threads; the report is invariant to this. The inner ECMP
  /// budget (checker.router_threads) is split across workers via
  /// util::split_thread_budget, like every other layered pool.
  int threads = 1;

  /// Per-trajectory organic growth per step, sampled uniformly.
  double growth_min = 0.0;
  double growth_max = 0.004;
  /// Demand surge windows per trajectory (sim::FaultScriptParams
  /// demand_events) and forecast-error windows (forecast_errors).
  int surges = 1;
  int forecast_errors = 1;
  double surge_factor_min = 0.8;
  double surge_factor_max = 1.5;
  double bias_factor_min = 0.85;
  double bias_factor_max = 1.2;

  /// Constraint stack the phases are re-validated against (theta, funneling,
  /// routing mode, router threads) — same shape the planner used.
  pipeline::CheckerConfig checker;

  /// Safe-growth-margin bisection: fixed iteration count (determinism) and
  /// the upper bracket of the uniform demand multiplier.
  int margin_iterations = 16;
  double margin_max = 4.0;
};

/// Outcome of validating the plan against one sampled future.
struct TrajectoryOutcome {
  bool completed = false;  // false only when a stop request skipped it
  bool safe = false;
  bool unroutable = false;       // broke with a no-path demand, not theta
  int first_break_phase = -1;    // phase index of the first violation
  double break_multiplier = 0.0; // total-volume multiplier at the break step
  double break_utilization = 0.0;
  double min_headroom = 0.0;     // min over phases of theta - utilization
  /// Peak utilization after each executed phase, up to (and including) the
  /// breaking phase.
  std::vector<double> phase_utilization;
};

struct PhaseStats {
  int phase = 0;
  std::string action;  // action-type label of the phase
  int blocks = 0;
  long long evaluated = 0;  // trajectories that reached this phase
  long long unsafe = 0;     // trajectories that first broke here
  double worst_utilization = 0.0;
  double min_headroom = 0.0;  // theta - worst_utilization
};

struct WhatIfReport {
  int trajectories = 0;      // requested
  int trajectories_run = 0;  // completed (== requested unless stopped)
  std::uint64_t seed = 0;
  bool stopped = false;
  int unsafe = 0;
  int unroutable = 0;
  double safe_fraction = 1.0;
  /// The weakest observed break: the unsafe trajectory with the smallest
  /// demand multiplier at its breaking step. first_break_phase is -1 when
  /// every trajectory stayed safe.
  int first_break_phase = -1;
  double first_break_multiplier = 0.0;
  /// break_histogram[p] = trajectories whose first violation was phase p.
  std::vector<long long> break_histogram;
  std::vector<PhaseStats> phases;
  /// Largest uniform demand multiplier (within margin_max) under which every
  /// phase stays safe; margin_saturated means safe even at margin_max.
  double safe_growth_margin = 1.0;
  bool margin_saturated = false;
};

/// Builds a fresh, identical copy of the migration under test. Called once
/// per sweep worker (trajectories mutate topology state), so it must be
/// deterministic: every returned case must be element-for-element identical.
using CaseFactory = std::function<migration::MigrationCase()>;

/// Runs the sweep + margin search. `plan` must be a valid plan for the
/// factory's case (block indices resolve against it). `stop` is an optional
/// cooperative stop flag polled between trajectories; a stopped run reports
/// the completed prefix with stopped = true. Throws std::invalid_argument
/// on bad params.
WhatIfReport run_whatif(const CaseFactory& factory, const core::Plan& plan,
                        const WhatIfParams& params,
                        const std::atomic<bool>* stop = nullptr);

/// The klotski.whatif.v1 report document.
json::Value report_to_json(const WhatIfReport& report,
                           const WhatIfParams& params);

/// The exact bytes klotski_whatif writes: dump(report_to_json, 2) + "\n".
/// The serve method caches and returns these same bytes, so CLI and daemon
/// reports are byte-identical for the same (inputs, seed, N).
std::string report_text(const WhatIfReport& report,
                        const WhatIfParams& params);

}  // namespace klotski::whatif
