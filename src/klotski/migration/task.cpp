#include "klotski/migration/task.h"

#include <unordered_set>

namespace klotski::migration {

std::vector<std::int32_t> MigrationTask::actions_per_type() const {
  std::vector<std::int32_t> out;
  out.reserve(blocks.size());
  for (const auto& type_blocks : blocks) {
    out.push_back(static_cast<std::int32_t>(type_blocks.size()));
  }
  return out;
}

int MigrationTask::total_actions() const {
  int total = 0;
  for (const auto& type_blocks : blocks) {
    total += static_cast<int>(type_blocks.size());
  }
  return total;
}

int MigrationTask::operated_switches() const {
  std::unordered_set<std::int32_t> seen;
  for (const auto& type_blocks : blocks) {
    for (const OperationBlock& block : type_blocks) {
      for (const ElementOp& op : block.ops) {
        if (op.kind == ElementOp::Kind::kSwitch) seen.insert(op.id);
      }
    }
  }
  return static_cast<int>(seen.size());
}

int MigrationTask::operated_circuits() const {
  std::unordered_set<std::int32_t> seen;
  for (const auto& type_blocks : blocks) {
    for (const OperationBlock& block : type_blocks) {
      for (const ElementOp& op : block.ops) {
        if (op.kind == ElementOp::Kind::kCircuit) seen.insert(op.id);
      }
    }
  }
  return static_cast<int>(seen.size());
}

double MigrationTask::operated_capacity_tbps() const {
  std::unordered_set<std::int32_t> seen;
  double total = 0.0;
  for (const auto& type_blocks : blocks) {
    for (const OperationBlock& block : type_blocks) {
      for (const ElementOp& op : block.ops) {
        if (op.kind == ElementOp::Kind::kCircuit && seen.insert(op.id).second) {
          total += topo->circuit(op.id).capacity_tbps;
        }
      }
    }
  }
  return total;
}

std::string MigrationTask::validate() const {
  if (topo == nullptr) return "task has no topology";
  if (action_types.size() != blocks.size()) {
    return "action_types / blocks arity mismatch";
  }
  for (std::size_t t = 0; t < blocks.size(); ++t) {
    for (const OperationBlock& block : blocks[t]) {
      if (block.type != static_cast<ActionTypeId>(t)) {
        return "block " + block.label + " filed under wrong type";
      }
      if (block.ops.empty()) return "block " + block.label + " is empty";
      for (const ElementOp& op : block.ops) {
        const bool in_range =
            op.kind == ElementOp::Kind::kSwitch
                ? op.id >= 0 &&
                      op.id < static_cast<std::int32_t>(topo->num_switches())
                : op.id >= 0 &&
                      op.id < static_cast<std::int32_t>(topo->num_circuits());
        if (!in_range) return "block " + block.label + " has out-of-range op";
      }
    }
  }

  original_state.restore(*topo);
  for (const auto& type_blocks : blocks) {
    for (const OperationBlock& block : type_blocks) block.apply(*topo);
  }
  const topo::TopologyState reached = topo::TopologyState::capture(*topo);
  original_state.restore(*topo);
  if (!(reached == target_state)) {
    return "applying all blocks does not produce the target state";
  }
  return "";
}

}  // namespace klotski::migration
