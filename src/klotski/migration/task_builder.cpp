#include "klotski/migration/task_builder.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace klotski::migration {

using topo::CircuitId;
using topo::ElementState;
using topo::Generation;
using topo::Location;
using topo::Region;
using topo::SwitchId;
using topo::SwitchRole;
using topo::Topology;

void finalize_migration_case(MigrationCase& mig,
                             const topo::RegionParams& rp) {
  MigrationTask& task = mig.task;
  task.topo = &mig.region->topo;
  task.original_state = topo::TopologyState::capture(*task.topo);

  // Target = original + all blocks applied.
  for (const auto& type_blocks : task.blocks) {
    for (const OperationBlock& block : type_blocks) block.apply(*task.topo);
  }
  task.target_state = topo::TopologyState::capture(*task.topo);
  task.original_state.restore(*task.topo);

  tighten_port_budgets(task, rp);

  const std::string error = task.validate();
  if (!error.empty()) {
    throw std::logic_error("task builder produced invalid task: " + error);
  }
}

void tighten_port_budgets(MigrationTask& task,
                          const topo::RegionParams& rp) {
  Topology& topo = *task.topo;

  task.original_state.restore(topo);
  std::vector<int> original_ports(topo.num_switches());
  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    original_ports[i] = topo.occupied_ports(static_cast<SwitchId>(i));
  }
  task.target_state.restore(topo);
  std::vector<int> target_ports(topo.num_switches());
  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    target_ports[i] = topo.occupied_ports(static_cast<SwitchId>(i));
  }
  task.original_state.restore(topo);

  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    topo::Switch& s = topo.sw(static_cast<SwitchId>(i));
    int slack = rp.port_slack_agg;
    switch (s.role) {
      case SwitchRole::kRsw:
      case SwitchRole::kFsw:
        slack = rp.port_slack_fabric;
        break;
      case SwitchRole::kSsw:
        slack = rp.port_slack_ssw;
        break;
      case SwitchRole::kEb:
        slack = rp.port_slack_eb;
        break;
      case SwitchRole::kEbb:
        slack = rp.port_slack_ebb;
        break;
      default:
        break;
    }
    s.max_ports = std::max(original_ports[i], target_ports[i]) + slack;
    if (s.max_ports <= 0) s.max_ports = 1;
  }
}

// ---------------------------------------------------------------------------
// HGRID V1 -> V2

MigrationCase build_hgrid_migration(const topo::RegionParams& region_params,
                                    const HgridMigrationParams& params) {
  MigrationCase mig;
  mig.region = std::make_unique<Region>(topo::build_region(region_params));
  Region& region = *mig.region;
  Topology& topo = region.topo;
  MigrationTask& task = mig.task;
  task.name = "hgrid-v1-to-v2";

  // Demands are calibrated against the original (pre-staging) topology.
  task.demands = traffic::generate_demands(region, params.demand);

  const int v1_grids = region_params.grids;
  const int v2_grids =
      params.v2_grids > 0 ? params.v2_grids : (v1_grids * 3 + 1) / 2;
  const int v2_fadus = params.v2_fadus_per_grid_per_dc > 0
                           ? params.v2_fadus_per_grid_per_dc
                           : region_params.fadus_per_grid_per_dc;
  const int v2_fauus = params.v2_fauus_per_grid > 0
                           ? params.v2_fauus_per_grid
                           : region_params.fauus_per_grid;

  // Stage the V2 grids as absent hardware wired to the same SSW planes and
  // the same EB/DR boundary.
  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  std::vector<std::vector<std::vector<SwitchId>>> v2_fadus_by_grid(
      static_cast<std::size_t>(v2_grids));
  std::vector<std::vector<SwitchId>> v2_fauus_by_grid(
      static_cast<std::size_t>(v2_grids));

  for (int g = 0; g < v2_grids; ++g) {
    const std::string grid_prefix = "g" + std::to_string(g) + "v2/";
    const auto grid_loc = static_cast<std::int16_t>(v1_grids + g);
    v2_fadus_by_grid[g].resize(region_params.dcs);

    for (int dc = 0; dc < region_params.dcs; ++dc) {
      const topo::FabricParams& fab = region.fabric(dc);
      for (int k = 0; k < v2_fadus; ++k) {
        Location loc;
        loc.dc = static_cast<std::int16_t>(dc);
        loc.grid = grid_loc;
        const SwitchId fadu = topo.add_switch(
            SwitchRole::kFadu, Generation::kV2, loc, kUnsizedPorts,
            ElementState::kAbsent,
            grid_prefix + "d" + std::to_string(dc) + "/fadu" +
                std::to_string(k));
        v2_fadus_by_grid[g][dc].push_back(fadu);

        const int plane = (k + g * v2_fadus) % fab.planes;
        for (const SwitchId ssw : region.ssws[dc][plane]) {
          topo.add_circuit(ssw, fadu, region_params.cap_ssw_fadu,
                           ElementState::kAbsent);
        }
      }
    }
    for (int u = 0; u < v2_fauus; ++u) {
      Location loc;
      loc.grid = grid_loc;
      const SwitchId fauu = topo.add_switch(
          SwitchRole::kFauu, Generation::kV2, loc, kUnsizedPorts,
          ElementState::kAbsent, grid_prefix + "fauu" + std::to_string(u));
      v2_fauus_by_grid[g].push_back(fauu);

      for (int dc = 0; dc < region_params.dcs; ++dc) {
        for (const SwitchId fadu : v2_fadus_by_grid[g][dc]) {
          topo.add_circuit(fadu, fauu, region_params.cap_fadu_fauu,
                           ElementState::kAbsent);
        }
      }
      for (const SwitchId eb : region.ebs) {
        topo.add_circuit(fauu, eb, region_params.cap_fauu_eb,
                         ElementState::kAbsent);
      }
      for (const SwitchId dr : region.drs) {
        topo.add_circuit(fauu, dr, region_params.cap_fauu_dr,
                         ElementState::kAbsent);
      }
    }
  }

  // Action types.
  task.action_types = {
      ActionType{0, "drain-hgrid-v1", OpKind::kDrain, SwitchRole::kFadu,
                 Generation::kV1},
      ActionType{1, "undrain-hgrid-v2", OpKind::kUndrain, SwitchRole::kFadu,
                 Generation::kV2},
  };
  task.blocks.resize(2);

  // Operation blocks: grid-major; inside a grid, the per-DC FADU chunks then
  // the FAUU chunks (the §4.1 example merges FADU and FAUU symmetry blocks;
  // chunking reproduces the configured block granularity). A block_scale
  // below 1 (Figure 11's 0.25x / 0.5x settings) merges whole neighboring
  // grids into one operation-block neighborhood.
  const int grid_merge =
      (params.policy.use_operation_blocks && params.policy.block_scale < 1.0)
          ? std::max(1, static_cast<int>(
                            std::llround(1.0 / params.policy.block_scale)))
          : 1;

  int next_id = 0;
  auto emit_group_blocks =
      [&](ActionTypeId type, const std::string& tag, int group,
          const std::vector<std::vector<SwitchId>>& fadus_by_dc,
          const std::vector<SwitchId>& fauus, ElementState state) {
        for (int dc = 0; dc < static_cast<int>(fadus_by_dc.size()); ++dc) {
          const int chunks =
              policy_chunks(params.policy, params.fadu_chunks_per_grid_dc,
                            static_cast<int>(fadus_by_dc[dc].size()));
          int chunk_index = 0;
          for (const auto& chunk : chunk_switches(fadus_by_dc[dc], chunks)) {
            task.blocks[type].push_back(make_switch_block(
                topo, next_id++, type,
                tag + "/g" + std::to_string(group) + "/d" +
                    std::to_string(dc) + "/fadu-chunk" +
                    std::to_string(chunk_index++),
                chunk, state));
          }
        }
        const int chunks =
            policy_chunks(params.policy, params.fauu_chunks_per_grid,
                          static_cast<int>(fauus.size()));
        int chunk_index = 0;
        for (const auto& chunk : chunk_switches(fauus, chunks)) {
          task.blocks[type].push_back(make_switch_block(
              topo, next_id++, type,
              tag + "/g" + std::to_string(group) + "/fauu-chunk" +
                  std::to_string(chunk_index++),
              chunk, state));
        }
      };

  auto emit_all = [&](ActionTypeId type, const std::string& tag,
                      int grid_count,
                      const std::vector<std::vector<std::vector<SwitchId>>>&
                          fadus_by_grid,
                      const std::vector<std::vector<SwitchId>>& fauus_by_grid,
                      ElementState state) {
    for (int g0 = 0; g0 < grid_count; g0 += grid_merge) {
      std::vector<std::vector<SwitchId>> fadus(
          static_cast<std::size_t>(region_params.dcs));
      std::vector<SwitchId> fauus;
      for (int g = g0; g < std::min(grid_count, g0 + grid_merge); ++g) {
        for (int dc = 0; dc < region_params.dcs; ++dc) {
          fadus[static_cast<std::size_t>(dc)].insert(
              fadus[static_cast<std::size_t>(dc)].end(),
              fadus_by_grid[g][dc].begin(), fadus_by_grid[g][dc].end());
        }
        fauus.insert(fauus.end(), fauus_by_grid[g].begin(),
                     fauus_by_grid[g].end());
      }
      emit_group_blocks(type, tag, g0 / grid_merge, fadus, fauus, state);
    }
  };

  emit_all(0, "drain-v1", v1_grids, region.fadus, region.fauus,
           ElementState::kAbsent);
  emit_all(1, "undrain-v2", v2_grids, v2_fadus_by_grid, v2_fauus_by_grid,
           ElementState::kActive);

  // At symmetry-block granularity ("w/o OB") the planner conceptually picks
  // any individual switch next; the compact representation pins a canonical
  // per-type order, so make that order plane-balanced — grid-major sweeps
  // would concentrate consecutive drains on one spine plane and wedge the
  // search into states no completion can leave.
  if (!params.policy.use_operation_blocks) {
    auto bucket_of = [&](const OperationBlock& block) -> int {
      for (const ElementOp& op : block.ops) {
        if (op.kind != ElementOp::Kind::kSwitch) continue;
        for (const CircuitId cid : topo.incident(op.id)) {
          const topo::Switch& other =
              topo.sw(topo.circuit(cid).other(op.id));
          if (other.role == SwitchRole::kSsw) {
            return other.loc.dc * 64 + other.loc.plane;
          }
        }
      }
      return -1;  // FAUUs and other planeless switches
    };
    for (auto& type_blocks : task.blocks) {
      std::map<int, std::vector<OperationBlock>> buckets;
      for (OperationBlock& block : type_blocks) {
        buckets[bucket_of(block)].push_back(std::move(block));
      }
      type_blocks.clear();
      bool emitted = true;
      std::size_t round = 0;
      while (emitted) {
        emitted = false;
        for (auto& [bucket, blocks] : buckets) {
          if (round < blocks.size()) {
            type_blocks.push_back(blocks[round]);
            emitted = true;
          }
        }
        ++round;
      }
    }
  }

  finalize_migration_case(mig, region_params);
  return mig;
}

// ---------------------------------------------------------------------------
// SSW Forklift

MigrationCase build_ssw_forklift(const topo::RegionParams& region_params,
                                 const SswForkliftParams& params) {
  MigrationCase mig;
  mig.region = std::make_unique<Region>(topo::build_region(region_params));
  Region& region = *mig.region;
  Topology& topo = region.topo;
  MigrationTask& task = mig.task;
  task.name = "ssw-forklift";

  task.demands = traffic::generate_demands(region, params.demand);

  std::vector<int> dcs;
  if (params.dc < 0) {
    for (int dc = 0; dc < region_params.dcs; ++dc) dcs.push_back(dc);
  } else {
    if (params.dc >= region_params.dcs) {
      throw std::invalid_argument("build_ssw_forklift: dc out of range");
    }
    dcs.push_back(params.dc);
  }

  // Stage one V2 SSW per V1 SSW, mirroring its wiring at higher capacity.
  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  // new_ssws[dc][plane] aligned with region.ssws.
  std::vector<std::vector<std::vector<SwitchId>>> new_ssws(
      static_cast<std::size_t>(region_params.dcs));

  for (const int dc : dcs) {
    const topo::FabricParams& fab = region.fabric(dc);
    new_ssws[dc].resize(fab.planes);
    for (int plane = 0; plane < fab.planes; ++plane) {
      for (std::size_t i = 0; i < region.ssws[dc][plane].size(); ++i) {
        const SwitchId old_ssw = region.ssws[dc][plane][i];
        Location loc = topo.sw(old_ssw).loc;
        const SwitchId v2 = topo.add_switch(
            SwitchRole::kSsw, Generation::kV2, loc, kUnsizedPorts,
            ElementState::kAbsent,
            topo.sw(old_ssw).name + "v2");
        new_ssws[dc][plane].push_back(v2);

        // Mirror the old SSW's circuits. Snapshot first: adding circuits
        // appends to the incident list we are iterating.
        const std::vector<CircuitId> old_circuits = topo.incident(old_ssw);
        for (const CircuitId cid : old_circuits) {
          const topo::Circuit& c = topo.circuit(cid);
          if (c.state == ElementState::kAbsent) continue;  // staged elsewhere
          topo.add_circuit(v2, c.other(old_ssw),
                           c.capacity_tbps * params.v2_capacity_factor,
                           ElementState::kAbsent);
        }
      }
    }
  }

  task.action_types = {
      ActionType{0, "drain-ssw-v1", OpKind::kDrain, SwitchRole::kSsw,
                 Generation::kV1},
      ActionType{1, "undrain-ssw-v2", OpKind::kUndrain, SwitchRole::kSsw,
                 Generation::kV2},
  };
  task.blocks.resize(2);

  // Plane-major blocks; the policy splits each plane into blocks_per_plane
  // chunks (§5: "We split SSWs on a plane into several operation blocks").
  int next_id = 0;
  for (const int dc : dcs) {
    const topo::FabricParams& fab = region.fabric(dc);
    for (int plane = 0; plane < fab.planes; ++plane) {
      const int chunks = policy_chunks(
          params.policy, params.blocks_per_plane,
          static_cast<int>(region.ssws[dc][plane].size()));
      int chunk_index = 0;
      for (const auto& chunk :
           chunk_switches(region.ssws[dc][plane], chunks)) {
        task.blocks[0].push_back(make_switch_block(
            topo, next_id++, 0,
            "drain-v1/d" + std::to_string(dc) + "/pl" +
                std::to_string(plane) + "/ssw-chunk" +
                std::to_string(chunk_index++),
            chunk, ElementState::kAbsent));
      }
      chunk_index = 0;
      for (const auto& chunk : chunk_switches(new_ssws[dc][plane], chunks)) {
        task.blocks[1].push_back(make_switch_block(
            topo, next_id++, 1,
            "undrain-v2/d" + std::to_string(dc) + "/pl" +
                std::to_string(plane) + "/ssw-chunk" +
                std::to_string(chunk_index++),
            chunk, ElementState::kActive));
      }
    }
  }

  finalize_migration_case(mig, region_params);
  return mig;
}

// ---------------------------------------------------------------------------
// DMAG

MigrationCase build_dmag_migration(const topo::RegionParams& region_params,
                                   const DmagMigrationParams& params) {
  if (params.ma_per_eb < 1) {
    throw std::invalid_argument("build_dmag_migration: ma_per_eb must be >=1");
  }
  MigrationCase mig;
  mig.region = std::make_unique<Region>(topo::build_region(region_params));
  Region& region = *mig.region;
  Topology& topo = region.topo;
  MigrationTask& task = mig.task;
  task.name = "dmag";

  task.demands = traffic::generate_demands(region, params.demand);

  const int grids = region_params.grids;
  const int ma_per_eb = std::min(params.ma_per_eb, grids);
  const double cap_fauu_ma =
      params.cap_fauu_ma > 0.0
          ? params.cap_fauu_ma
          : region_params.cap_fauu_eb + region_params.cap_fauu_dr;
  const double cap_ma_eb =
      params.cap_ma_eb > 0.0 ? params.cap_ma_eb : region_params.cap_eb_ebb;

  // Partition grids across the per-EB MA index: partition(g) = g % ma_per_eb.
  auto partition_of = [ma_per_eb](int grid) { return grid % ma_per_eb; };

  // Stage MA switches: MA (eb e, partition j) connects the FAUUs of the
  // grids in partition j to EB e. Creation (and hence canonical undrain)
  // order is partition-major so the MAs a migrating grid needs come up
  // before the next grid's — matching the grid-major drain order below.
  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  std::vector<SwitchId> mas;
  for (int j = 0; j < ma_per_eb; ++j) {
    for (int e = 0; e < region_params.ebs; ++e) {
      Location loc;
      loc.grid = static_cast<std::int16_t>(j);
      const SwitchId ma = topo.add_switch(
          SwitchRole::kMa, Generation::kV2, loc, kUnsizedPorts,
          ElementState::kAbsent,
          "ma" + std::to_string(e) + "_" + std::to_string(j));
      mas.push_back(ma);

      int fauu_links = 0;
      for (int g = 0; g < grids; ++g) {
        if (partition_of(g) != j) continue;
        for (const SwitchId fauu : region.fauus[g]) {
          topo.add_circuit(fauu, ma, cap_fauu_ma, ElementState::kAbsent);
          ++fauu_links;
        }
      }
      // Size the MA->EB trunk so the MA is never the bottleneck.
      const int eb_links = std::max(
          1,
          static_cast<int>(std::ceil(fauu_links * cap_fauu_ma / cap_ma_eb)) /
              2);
      for (int l = 0; l < eb_links; ++l) {
        topo.add_circuit(ma, region.ebs[e], cap_ma_eb, ElementState::kAbsent);
      }
    }
  }

  task.action_types = {
      ActionType{0, "drain-fauu-eb", OpKind::kDrain, SwitchRole::kEb,
                 Generation::kV1},
      ActionType{1, "undrain-ma", OpKind::kUndrain, SwitchRole::kMa,
                 Generation::kV2},
      ActionType{2, "drain-fauu-dr", OpKind::kDrain, SwitchRole::kDr,
                 Generation::kV1},
  };
  task.blocks.resize(3);

  // Type 0: FAUU-EB circuits grouped by (EB, grid) — grouping by EB releases
  // the most ports per action (§5). The canonical execution order is
  // grid-major (finish one grid's groups across all EBs before the next):
  // shortest-path ECMP only shifts a FAUU onto the MA layer once its last
  // direct circuit is gone, so a grid must be able to migrate *completely*
  // before the legacy DR trunks absorb too much displaced traffic —
  // breadth-first EB-major draining wedges at scale (§7.1). Without
  // operation blocks the groups degrade to per-(EB, grid, FAUU).
  int next_id = 0;
  for (int g = 0; g < grids; ++g) {
    for (int e = 0; e < region_params.ebs; ++e) {
      std::vector<std::vector<CircuitId>> groups(1);
      for (const SwitchId fauu : region.fauus[g]) {
        for (const CircuitId cid : topo.incident(fauu)) {
          const topo::Circuit& c = topo.circuit(cid);
          if (c.state != ElementState::kActive) continue;
          if (c.other(fauu) != region.ebs[e]) continue;
          if (!params.policy.use_operation_blocks) {
            groups.push_back({cid});
          } else {
            groups[0].push_back(cid);
          }
        }
      }
      int chunk_index = 0;
      for (const auto& group : groups) {
        if (group.empty()) continue;
        task.blocks[0].push_back(make_circuit_block(
            next_id++, 0,
            "drain-fauu-eb/e" + std::to_string(e) + "/g" + std::to_string(g) +
                "/c" + std::to_string(chunk_index++),
            group, ElementState::kAbsent));
      }
    }
  }

  // Type 1: one block per MA switch.
  for (const SwitchId ma : mas) {
    task.blocks[1].push_back(
        make_switch_block(topo, next_id++, 1, "undrain-" + topo.sw(ma).name,
                          {ma}, ElementState::kActive));
  }

  // Type 2: the legacy FAUU-DR shortcut circuits, grouped per grid (one
  // retirement action per grid once its FAUUs reach the EBs through MAs).
  for (int g = 0; g < grids; ++g) {
    std::vector<CircuitId> group;
    for (const SwitchId fauu : region.fauus[g]) {
      for (const CircuitId cid : topo.incident(fauu)) {
        const topo::Circuit& c = topo.circuit(cid);
        if (c.state != ElementState::kActive) continue;
        if (topo.sw(c.other(fauu)).role != SwitchRole::kDr) continue;
        group.push_back(cid);
      }
    }
    if (group.empty()) continue;
    task.blocks[2].push_back(make_circuit_block(
        next_id++, 2, "drain-fauu-dr/g" + std::to_string(g), group,
        ElementState::kAbsent));
  }

  finalize_migration_case(mig, region_params);
  return mig;
}

}  // namespace klotski::migration
