// Migration task builders for the non-Clos topology families
// (DESIGN.md §12).
//
//  * Flat partial forklift: upgrade a seeded independent subset of the flat
//    fabric's switches to V2 hardware. Each upgraded switch gets a staged
//    V2 mirror wired to the same (non-upgraded) neighbors at higher
//    capacity; drain blocks retire the V1 switches, undrain blocks onboard
//    the mirrors. Because every switch is also a demand endpoint, draining
//    concentrates its group's volume on the surviving sources — the
//    capacity cliff that forces batched plans. Restricting upgrades to an
//    independent set guarantees no staged circuit ever lands on an absent
//    endpoint and the target graph stays isomorphic to the original.
//
//  * Reconf rewire: the V2 target of a reconfigurable mesh has a different
//    stride set, so operation blocks add and remove *circuits*, never
//    switches: drain blocks retire the V1-only chords, undrain blocks
//    onboard the staged V2-only chords. Tight port budgets (ReconfParams::
//    port_slack) gate onboarding until the same switch sheds an old chord —
//    the §2.3 decommission-before-onboard ordering at circuit granularity.
#pragma once

#include "klotski/migration/policy.h"
#include "klotski/migration/task.h"
#include "klotski/topo/families.h"
#include "klotski/traffic/generator.h"

namespace klotski::migration {

struct FlatMigrationParams {
  /// Fraction of switches to upgrade; the independent-set constraint may
  /// cap the achieved fraction below this on dense graphs.
  double upgrade_fraction = 0.5;
  /// Capacity multiplier of the V2 mirrors' circuits.
  double v2_capacity_factor = 1.5;
  /// Base number of drain (and undrain) operation blocks.
  int switch_chunks = 4;
  /// Generated mesh demands are uniformly rescaled (downwards only) so the
  /// busiest circuit of the *original* topology sits at this ECMP
  /// utilization. Transit load on sparse graphs grows with path length, so
  /// without the cap larger presets would start out above theta; with it
  /// every preset begins with the same headroom and migration pressure
  /// comes from the drains. 0 disables the cap.
  double origin_utilization_cap = 0.55;

  PolicyParams policy;
  traffic::DemandGenParams demand;
};

struct ReconfMigrationParams {
  /// Base operation blocks per rewired stride class.
  int chunks_per_stride = 4;
  /// See FlatMigrationParams::origin_utilization_cap.
  double origin_utilization_cap = 0.55;

  PolicyParams policy;
  traffic::DemandGenParams demand;
};

MigrationCase build_flat_migration(const topo::FlatParams& flat_params,
                                   const FlatMigrationParams& params = {});

/// Throws std::invalid_argument when the V1 and V2 stride patterns are
/// identical (nothing to rewire).
MigrationCase build_reconf_migration(const topo::ReconfParams& reconf_params,
                                     const ReconfMigrationParams& params = {});

}  // namespace klotski::migration
