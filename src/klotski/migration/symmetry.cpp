#include "klotski/migration/symmetry.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "klotski/util/hash.h"

namespace klotski::migration {

using topo::CircuitId;
using topo::SwitchId;
using topo::Topology;

namespace {

/// Initial coloring: everything a constraint can see locally on the switch
/// itself, hashed so an attribute edit recolors only that switch.
std::uint64_t initial_color(const topo::Switch& s) {
  std::uint64_t h = util::hash_combine(0x9E3779B97F4A7C15ULL,
                                       static_cast<std::uint64_t>(s.role));
  h = util::hash_combine(h, static_cast<std::uint64_t>(s.gen));
  h = util::hash_combine(h, static_cast<std::uint64_t>(s.state));
  return util::hash_combine(h, static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(s.max_ports)));
}

/// Edge signature: capacity and circuit state matter to constraints.
std::uint64_t edge_signature(const topo::Circuit& c) {
  return util::hash_combine(static_cast<std::uint64_t>(c.capacity_tbps * 1e6),
                            static_cast<std::uint64_t>(c.state));
}

/// One switch's refined color: hash of its previous color and the sorted
/// multiset of (edge signature, previous neighbor color) over all incident
/// circuits. `scratch` avoids per-call allocation.
std::uint64_t refine_one(const Topology& topo, SwitchId sw,
                         const std::vector<std::uint64_t>& edge_sigs,
                         const std::vector<std::uint64_t>& prev,
                         std::vector<std::uint64_t>& scratch) {
  scratch.clear();
  for (const CircuitId c : topo.incident(sw)) {
    const topo::Circuit& circuit = topo.circuits()[static_cast<std::size_t>(c)];
    const SwitchId other = circuit.a == sw ? circuit.b : circuit.a;
    scratch.push_back(util::hash_combine(
        edge_sigs[static_cast<std::size_t>(c)],
        prev[static_cast<std::size_t>(other)]));
  }
  std::sort(scratch.begin(), scratch.end());
  return util::hash_combine(prev[static_cast<std::size_t>(sw)],
                            util::hash_span(scratch.data(), scratch.size()));
}

std::size_t distinct_colors(const std::vector<std::uint64_t>& colors) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(colors.size() * 2);
  for (const std::uint64_t c : colors) seen.insert(c);
  return seen.size();
}

/// Full refinement to the fixed point. Appends the initial colors and every
/// refined round to `rounds`; the back() is the fixed-point coloring. The
/// class count is strictly increasing, so at most |S| rounds. Colors are
/// hashes — two switches share a color iff they are 1-WL equivalent (up to
/// a 2^-64 collision, the same bet the planner's state hashing makes).
void run_refinement(const Topology& topo,
                    const std::vector<std::uint64_t>& edge_sigs,
                    std::vector<std::vector<std::uint64_t>>& rounds) {
  const std::size_t n = topo.num_switches();
  rounds.clear();
  rounds.emplace_back(n);
  for (const topo::Switch& s : topo.switches()) {
    rounds.back()[static_cast<std::size_t>(s.id)] = initial_color(s);
  }
  std::size_t num_colors = distinct_colors(rounds.back());

  std::vector<std::uint64_t> scratch;
  while (true) {
    const std::vector<std::uint64_t>& prev = rounds.back();
    std::vector<std::uint64_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = refine_one(topo, static_cast<SwitchId>(i), edge_sigs, prev,
                           scratch);
    }
    const std::size_t next_colors = distinct_colors(next);
    rounds.push_back(std::move(next));
    if (next_colors == num_colors) break;  // fixed point
    num_colors = next_colors;
  }
}

/// Dense class numbering by first occurrence in switch-id order — the same
/// numbering the historical per-round renumbering produced.
SymmetryPartition build_partition(const std::vector<std::uint64_t>& colors) {
  const std::size_t n = colors.size();
  SymmetryPartition partition;
  partition.class_of.assign(n, -1);
  std::unordered_map<std::uint64_t, std::int32_t> class_of_color;
  class_of_color.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = class_of_color.emplace(
        colors[i], static_cast<std::int32_t>(class_of_color.size()));
    if (inserted) partition.blocks.emplace_back();
    partition.class_of[i] = it->second;
    partition.blocks[static_cast<std::size_t>(it->second)].push_back(
        static_cast<SwitchId>(i));
  }
  return partition;
}

}  // namespace

std::size_t SymmetryPartition::largest_block() const {
  std::size_t largest = 0;
  for (const auto& block : blocks) largest = std::max(largest, block.size());
  return largest;
}

std::vector<std::pair<std::size_t, std::size_t>>
SymmetryPartition::size_histogram() const {
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& block : blocks) ++histogram[block.size()];
  return {histogram.begin(), histogram.end()};
}

SymmetryPartition compute_symmetry(const Topology& topo) {
  std::vector<std::uint64_t> edge_sigs(topo.num_circuits());
  for (std::size_t c = 0; c < topo.num_circuits(); ++c) {
    edge_sigs[c] = edge_signature(topo.circuits()[c]);
  }
  std::vector<std::vector<std::uint64_t>> rounds;
  run_refinement(topo, edge_sigs, rounds);
  return build_partition(rounds.back());
}

bool equivalent(const SymmetryPartition& partition, SwitchId a, SwitchId b) {
  return partition.class_of[static_cast<std::size_t>(a)] ==
         partition.class_of[static_cast<std::size_t>(b)];
}

void IncrementalSymmetry::diff_dirty(
    const Topology& topo, std::vector<SwitchId>& dirty_switches,
    std::vector<CircuitId>& dirty_circuits) const {
  // The cached round-0 colors are a pure hash of each switch's attributes,
  // so they double as the attribute snapshot; likewise edge_sigs_ for
  // circuits. Comparing against them filters journal entries that changed
  // and changed back, and replaces the journal entirely when coverage was
  // lost (bump_state_version restarts it).
  const std::vector<std::uint64_t>& initial = rounds_.front();
  for (const topo::Switch& s : topo.switches()) {
    if (initial_color(s) != initial[static_cast<std::size_t>(s.id)]) {
      dirty_switches.push_back(s.id);
    }
  }
  for (std::size_t c = 0; c < topo.num_circuits(); ++c) {
    if (edge_signature(topo.circuits()[c]) != edge_sigs_[c]) {
      dirty_circuits.push_back(static_cast<CircuitId>(c));
    }
  }
}

void IncrementalSymmetry::compute_changed(const SymmetryPartition& before) {
  // A switch's interchangeability context changed iff its old class and new
  // class differ as member sets. Old blocks partition the switches, and
  // block member lists are ascending, so one vector compare per old block
  // covers every switch in O(|S|) total.
  changed_switches_.clear();
  if (before.class_of.size() != partition_.class_of.size()) {
    for (std::size_t i = 0; i < partition_.class_of.size(); ++i) {
      changed_switches_.push_back(static_cast<SwitchId>(i));
    }
    return;
  }
  for (const std::vector<SwitchId>& old_block : before.blocks) {
    if (old_block.empty()) continue;
    const auto new_class = static_cast<std::size_t>(
        partition_.class_of[static_cast<std::size_t>(old_block.front())]);
    if (old_block != partition_.blocks[new_class]) {
      changed_switches_.insert(changed_switches_.end(), old_block.begin(),
                               old_block.end());
    }
  }
  std::sort(changed_switches_.begin(), changed_switches_.end());
}

const SymmetryPartition& IncrementalSymmetry::refresh(const Topology& topo) {
  const std::size_t n = topo.num_switches();
  const std::size_t m = topo.num_circuits();

  const bool reusable = topo_ == &topo && !rounds_.empty() &&
                        rounds_.front().size() == n && edge_sigs_.size() == m;
  if (!reusable) {
    ++full_refreshes_;
    topo_ = &topo;
    edge_sigs_.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
      edge_sigs_[c] = edge_signature(topo.circuits()[c]);
    }
    run_refinement(topo, edge_sigs_, rounds_);
    const SymmetryPartition before = std::move(partition_);
    partition_ = build_partition(rounds_.back());
    compute_changed(before);
    version_ = topo.state_version();
    return partition_;
  }

  // Exact dirty sets: journal when it still covers (since, now], snapshot
  // diff otherwise. Journal entries are only candidates — the snapshot
  // comparison drops elements whose attributes ended up unchanged.
  std::vector<SwitchId> dirty_switches;
  std::vector<CircuitId> dirty_circuits;
  std::vector<Topology::StateChange> journal;
  if (topo.changes_since(version_, journal)) {
    const std::vector<std::uint64_t>& initial = rounds_.front();
    for (const Topology::StateChange e : journal) {
      if (Topology::change_is_switch(e)) {
        const SwitchId sw = Topology::change_switch(e);
        if (initial_color(topo.sw(sw)) !=
            initial[static_cast<std::size_t>(sw)]) {
          dirty_switches.push_back(sw);
        }
      } else {
        const CircuitId c = Topology::change_circuit(e);
        if (edge_signature(topo.circuit(c)) !=
            edge_sigs_[static_cast<std::size_t>(c)]) {
          dirty_circuits.push_back(c);
        }
      }
    }
    std::sort(dirty_switches.begin(), dirty_switches.end());
    dirty_switches.erase(
        std::unique(dirty_switches.begin(), dirty_switches.end()),
        dirty_switches.end());
    std::sort(dirty_circuits.begin(), dirty_circuits.end());
    dirty_circuits.erase(
        std::unique(dirty_circuits.begin(), dirty_circuits.end()),
        dirty_circuits.end());
  } else {
    diff_dirty(topo, dirty_switches, dirty_circuits);
  }

  version_ = topo.state_version();
  if (dirty_switches.empty() && dirty_circuits.empty()) {
    ++incremental_refreshes_;
    changed_switches_.clear();
    return partition_;
  }
  ++incremental_refreshes_;

  for (const CircuitId c : dirty_circuits) {
    edge_sigs_[static_cast<std::size_t>(c)] =
        edge_signature(topo.circuit(c));
  }

  // Round 0: re-hash only the attribute-dirty switches.
  std::vector<std::vector<std::uint64_t>> new_rounds;
  new_rounds.push_back(rounds_.front());
  std::vector<SwitchId> changed_prev;
  for (const SwitchId sw : dirty_switches) {
    const std::uint64_t color = initial_color(topo.sw(sw));
    if (color != new_rounds[0][static_cast<std::size_t>(sw)]) {
      new_rounds[0][static_cast<std::size_t>(sw)] = color;
      changed_prev.push_back(sw);
    }
  }
  std::size_t num_colors = distinct_colors(new_rounds[0]);

  // Endpoints of attribute-dirty circuits must be re-signed every round —
  // their edge term changed for good, not just transitively.
  std::vector<SwitchId> circuit_endpoints;
  for (const CircuitId c : dirty_circuits) {
    circuit_endpoints.push_back(topo.circuit(c).a);
    circuit_endpoints.push_back(topo.circuit(c).b);
  }

  std::vector<std::uint8_t> in_frontier(n, 0);
  std::vector<SwitchId> frontier;
  std::vector<std::uint64_t> scratch;

  for (std::size_t r = 1;; ++r) {
    const std::vector<std::uint64_t>& prev = new_rounds[r - 1];
    std::vector<std::uint64_t> next;

    if (r < rounds_.size()) {
      // Frontier: switches whose previous-round color changed, their
      // neighbors, and dirty-circuit endpoints. Everything else gets the
      // cached signature — its inputs (own prev color, every neighbor's
      // prev color, every incident edge signature) are all unchanged.
      frontier.clear();
      std::fill(in_frontier.begin(), in_frontier.end(), 0);
      const auto add = [&](SwitchId sw) {
        if (!in_frontier[static_cast<std::size_t>(sw)]) {
          in_frontier[static_cast<std::size_t>(sw)] = 1;
          frontier.push_back(sw);
        }
      };
      for (const SwitchId sw : circuit_endpoints) add(sw);
      for (const SwitchId sw : changed_prev) {
        add(sw);
        for (const CircuitId c : topo.incident(sw)) {
          const topo::Circuit& circuit =
              topo.circuits()[static_cast<std::size_t>(c)];
          add(circuit.a == sw ? circuit.b : circuit.a);
        }
      }

      next = rounds_[r];
      changed_prev.clear();
      for (const SwitchId sw : frontier) {
        const std::uint64_t color =
            refine_one(topo, sw, edge_sigs_, prev, scratch);
        if (color != next[static_cast<std::size_t>(sw)]) {
          next[static_cast<std::size_t>(sw)] = color;
          changed_prev.push_back(sw);
        }
      }
      std::sort(changed_prev.begin(), changed_prev.end());
    } else {
      // Past the cached fixed point: the new run needs more rounds than the
      // old one had — refine everything (no cache to diff against).
      next.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = refine_one(topo, static_cast<SwitchId>(i), edge_sigs_,
                             prev, scratch);
      }
      changed_prev.clear();
      for (std::size_t i = 0; i < n; ++i) {
        changed_prev.push_back(static_cast<SwitchId>(i));
      }
    }

    const std::size_t next_colors = distinct_colors(next);
    new_rounds.push_back(std::move(next));
    if (next_colors == num_colors) break;  // fixed point, same rule as full
    num_colors = next_colors;
  }

  rounds_ = std::move(new_rounds);
  const SymmetryPartition before = std::move(partition_);
  partition_ = build_partition(rounds_.back());
  compute_changed(before);
  return partition_;
}

}  // namespace klotski::migration
