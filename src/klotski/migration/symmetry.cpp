#include "klotski/migration/symmetry.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "klotski/util/hash.h"

namespace klotski::migration {

using topo::CircuitId;
using topo::SwitchId;
using topo::Topology;

namespace {

/// Initial coloring: everything a constraint can see locally on the switch
/// itself.
std::vector<std::int32_t> initial_colors(const Topology& topo) {
  std::map<std::tuple<int, int, int, int>, std::int32_t> color_of_key;
  std::vector<std::int32_t> colors(topo.num_switches());
  for (const topo::Switch& s : topo.switches()) {
    const auto key = std::make_tuple(static_cast<int>(s.role),
                                     static_cast<int>(s.gen),
                                     static_cast<int>(s.state), s.max_ports);
    const auto [it, unused] = color_of_key.emplace(
        key, static_cast<std::int32_t>(color_of_key.size()));
    (void)unused;
    colors[static_cast<std::size_t>(s.id)] = it->second;
  }
  return colors;
}

}  // namespace

std::size_t SymmetryPartition::largest_block() const {
  std::size_t largest = 0;
  for (const auto& block : blocks) largest = std::max(largest, block.size());
  return largest;
}

std::vector<std::pair<std::size_t, std::size_t>>
SymmetryPartition::size_histogram() const {
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& block : blocks) ++histogram[block.size()];
  return {histogram.begin(), histogram.end()};
}

SymmetryPartition compute_symmetry(const Topology& topo) {
  const std::size_t n = topo.num_switches();
  std::vector<std::int32_t> colors = initial_colors(topo);

  // Color refinement: a switch's new color is (old color, sorted multiset
  // of (edge signature, neighbor color)). Iterate to the fixed point; the
  // class count is strictly increasing, so at most |S| rounds.
  std::vector<std::uint64_t> signature(n);
  std::vector<std::vector<std::uint64_t>> neighbor_sigs(n);
  std::size_t num_colors = 0;
  for (const std::int32_t c : colors) {
    num_colors = std::max(num_colors, static_cast<std::size_t>(c) + 1);
  }

  while (true) {
    for (std::size_t i = 0; i < n; ++i) neighbor_sigs[i].clear();
    for (const topo::Circuit& c : topo.circuits()) {
      // Edge signature: capacity and circuit state matter to constraints.
      const std::uint64_t edge = util::hash_combine(
          static_cast<std::uint64_t>(c.capacity_tbps * 1e6),
          static_cast<std::uint64_t>(c.state));
      neighbor_sigs[static_cast<std::size_t>(c.a)].push_back(
          util::hash_combine(edge, static_cast<std::uint64_t>(
                                       colors[static_cast<std::size_t>(c.b)])));
      neighbor_sigs[static_cast<std::size_t>(c.b)].push_back(
          util::hash_combine(edge, static_cast<std::uint64_t>(
                                       colors[static_cast<std::size_t>(c.a)])));
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::sort(neighbor_sigs[i].begin(), neighbor_sigs[i].end());
      signature[i] = util::hash_combine(
          static_cast<std::uint64_t>(colors[i]),
          util::hash_span(neighbor_sigs[i].data(), neighbor_sigs[i].size()));
    }

    std::unordered_map<std::uint64_t, std::int32_t> color_of_signature;
    std::vector<std::int32_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, unused] = color_of_signature.emplace(
          signature[i],
          static_cast<std::int32_t>(color_of_signature.size()));
      (void)unused;
      next[i] = it->second;
    }
    const std::size_t next_colors = color_of_signature.size();
    colors.swap(next);
    if (next_colors == num_colors) break;  // fixed point
    num_colors = next_colors;
  }

  SymmetryPartition partition;
  partition.class_of = std::move(colors);
  partition.blocks.resize(num_colors);
  for (std::size_t i = 0; i < n; ++i) {
    partition.blocks[static_cast<std::size_t>(partition.class_of[i])]
        .push_back(static_cast<SwitchId>(i));
  }
  return partition;
}

bool equivalent(const SymmetryPartition& partition, SwitchId a, SwitchId b) {
  return partition.class_of[static_cast<std::size_t>(a)] ==
         partition.class_of[static_cast<std::size_t>(b)];
}

}  // namespace klotski::migration
