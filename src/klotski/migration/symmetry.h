// Symmetry blocks (§4.1, following Janus [4]).
//
// Switches are *equivalent* when no constraint or cost can distinguish
// them: same role, generation, life-cycle state, port budget, and the same
// multiset of (neighbor class, circuit capacity, circuit state) edges.
// Equivalence is computed by color refinement (iterated partition
// refinement over neighbor-class multisets), the standard 1-WL algorithm;
// its fixed point is a sound under-approximation of topological symmetry —
// switches it groups together are guaranteed interchangeable.
//
// The paper's observation, reproduced by these routines and asserted in the
// test suite: on Meta-style production topologies a symmetry block contains
// at most a couple of switches once migrations stage asymmetric hardware,
// which is why symmetry alone (Janus) prunes too little and Klotski merges
// blocks by *locality* into operation blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/topo/topology.h"

namespace klotski::migration {

/// A partition of all switches into equivalence classes.
struct SymmetryPartition {
  /// class_of[switch id] = class index (dense, 0-based).
  std::vector<std::int32_t> class_of;
  /// blocks[class index] = switch ids in the class.
  std::vector<std::vector<topo::SwitchId>> blocks;

  std::size_t num_blocks() const { return blocks.size(); }

  /// Size of the largest class.
  std::size_t largest_block() const;

  /// Histogram: count of blocks per block size.
  std::vector<std::pair<std::size_t, std::size_t>> size_histogram() const;
};

/// Computes the symmetry partition of the current element states.
/// Runs O(iterations * (|S| + |C|) log) with at most |S| refinement rounds.
SymmetryPartition compute_symmetry(const topo::Topology& topo);

/// True iff `a` and `b` land in the same class of `partition`.
bool equivalent(const SymmetryPartition& partition, topo::SwitchId a,
                topo::SwitchId b);

}  // namespace klotski::migration
