// Symmetry blocks (§4.1, following Janus [4]).
//
// Switches are *equivalent* when no constraint or cost can distinguish
// them: same role, generation, life-cycle state, port budget, and the same
// multiset of (neighbor class, circuit capacity, circuit state) edges.
// Equivalence is computed by color refinement (iterated partition
// refinement over neighbor-class multisets), the standard 1-WL algorithm;
// its fixed point is a sound under-approximation of topological symmetry —
// switches it groups together are guaranteed interchangeable.
//
// The paper's observation, reproduced by these routines and asserted in the
// test suite: on Meta-style production topologies a symmetry block contains
// at most a couple of switches once migrations stage asymmetric hardware,
// which is why symmetry alone (Janus) prunes too little and Klotski merges
// blocks by *locality* into operation blocks.
//
// Colors are raw 64-bit hashes throughout refinement (no per-round dense
// renumbering), so an element change only perturbs the colors it can
// actually reach — the property IncrementalSymmetry exploits to recompute
// just the dirty frontier of each round instead of the whole fabric.
// Classes are renumbered densely (first occurrence in switch-id order) only
// when the final partition is built, which keeps the numbering identical to
// the historical full recompute.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/topo/topology.h"

namespace klotski::migration {

/// A partition of all switches into equivalence classes.
struct SymmetryPartition {
  /// class_of[switch id] = class index (dense, 0-based).
  std::vector<std::int32_t> class_of;
  /// blocks[class index] = switch ids in the class (ascending).
  std::vector<std::vector<topo::SwitchId>> blocks;

  std::size_t num_blocks() const { return blocks.size(); }

  /// Size of the largest class.
  std::size_t largest_block() const;

  /// Histogram: count of blocks per block size.
  std::vector<std::pair<std::size_t, std::size_t>> size_histogram() const;
};

/// Computes the symmetry partition of the current element states.
/// Runs O(iterations * (|S| + |C|) log) with at most |S| refinement rounds.
SymmetryPartition compute_symmetry(const topo::Topology& topo);

/// True iff `a` and `b` land in the same class of `partition`.
bool equivalent(const SymmetryPartition& partition, topo::SwitchId a,
                topo::SwitchId b);

/// Incremental symmetry recomputation across topology mutations (the
/// warm-start replanning path, DESIGN.md §11).
///
/// refresh() produces exactly compute_symmetry(topo) — asserted by the
/// randomized equivalence suite — but reuses the cached per-round colors of
/// the previous refresh: only switches whose round-(r-1) color changed,
/// their neighbors, and the endpoints of circuits with changed attributes
/// are re-signed in round r; everything outside that growing frontier keeps
/// its cached color (a 1-WL signature is a pure function of those inputs).
///
/// Dirty elements come from the topology's change journal when it still
/// covers the span since the last refresh; otherwise (journal overflow, or
/// bump_state_version() after an out-of-band capacity edit, which restarts
/// coverage) from an O(|S| + |C|) snapshot diff — either way the dirty set
/// is exact, never guessed.
class IncrementalSymmetry {
 public:
  /// Recomputes the partition for `topo`'s current element states and
  /// returns it. The first call (or a call against a different topology
  /// object) runs a full refinement.
  const SymmetryPartition& refresh(const topo::Topology& topo);

  /// The partition of the last refresh().
  const SymmetryPartition& partition() const { return partition_; }

  /// Switches whose class *membership set* changed in the last refresh():
  /// s is listed iff the set of switches s is interchangeable with differs
  /// from the previous refresh. The first refresh lists every switch
  /// (nothing is comparable yet). Sorted ascending.
  const std::vector<topo::SwitchId>& changed_switches() const {
    return changed_switches_;
  }

  long long full_refreshes() const { return full_refreshes_; }
  long long incremental_refreshes() const { return incremental_refreshes_; }

 private:
  void diff_dirty(const topo::Topology& topo,
                  std::vector<topo::SwitchId>& dirty_switches,
                  std::vector<topo::CircuitId>& dirty_circuits) const;
  void compute_changed(const SymmetryPartition& before);

  const topo::Topology* topo_ = nullptr;
  std::uint64_t version_ = 0;
  /// Cached refinement state: rounds_[0] is the initial (attribute) colors,
  /// rounds_[r] the colors after the r-th refinement; edge_sigs_[c] the
  /// (capacity, state) signature of circuit c. rounds_[0] doubles as the
  /// switch-attribute snapshot for the diff fallback.
  std::vector<std::vector<std::uint64_t>> rounds_;
  std::vector<std::uint64_t> edge_sigs_;
  SymmetryPartition partition_;
  std::vector<topo::SwitchId> changed_switches_;
  long long full_refreshes_ = 0;
  long long incremental_refreshes_ = 0;
};

}  // namespace klotski::migration
