#include "klotski/migration/family_tasks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "klotski/migration/task_builder.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/util/rng.h"

namespace klotski::migration {

using topo::CircuitId;
using topo::ElementState;
using topo::Generation;
using topo::Region;
using topo::SwitchId;
using topo::SwitchRole;
using topo::Topology;

namespace {

/// Max ECMP utilization of the demands on the topology's current element
/// states, or 0 when the set is unroutable (the origin/target checks
/// report those with a better message).
double routed_max_utilization(const Topology& topo,
                              const traffic::DemandSet& demands) {
  traffic::EcmpRouter router(topo);
  traffic::LoadVector loads;
  if (!router.assign_all(demands, loads, nullptr)) return 0.0;
  return traffic::max_utilization(topo, loads);
}

/// Uniformly rescales the task's demand volumes (downwards only) so the
/// busiest circuit of both migration endpoints — the original topology and
/// the target produced by applying every block — carries at most `cap`
/// ECMP utilization. ECMP splits are volume-independent, so loads are
/// linear in the scale factor and the cap is exact, not iterative. Must run
/// after the blocks are built and with the topology in its original state;
/// the element states are restored before returning. Intermediate states
/// are deliberately NOT capped: squeezing the migration through those is
/// the planner's job, and the pressure the calibration wants.
void cap_endpoint_utilization(Topology& topo, MigrationTask& task,
                              double cap) {
  if (cap <= 0.0 || task.demands.empty()) return;
  const topo::TopologyState original = topo::TopologyState::capture(topo);
  double worst = routed_max_utilization(topo, task.demands);
  for (const auto& type_blocks : task.blocks) {
    for (const OperationBlock& block : type_blocks) block.apply(topo);
  }
  worst = std::max(worst, routed_max_utilization(topo, task.demands));
  original.restore(topo);
  if (worst <= cap) return;
  const double scale = cap / worst;
  for (traffic::Demand& d : task.demands) d.volume_tbps *= scale;
}

}  // namespace

// ---------------------------------------------------------------------------
// Flat partial forklift

MigrationCase build_flat_migration(const topo::FlatParams& flat_params,
                                   const FlatMigrationParams& params) {
  if (params.upgrade_fraction <= 0.0 || params.upgrade_fraction > 1.0) {
    throw std::invalid_argument(
        "build_flat_migration: upgrade_fraction must be in (0, 1]");
  }
  if (params.v2_capacity_factor <= 0.0) {
    throw std::invalid_argument(
        "build_flat_migration: v2_capacity_factor must be > 0");
  }
  MigrationCase mig;
  mig.region = std::make_unique<Region>(topo::build_flat(flat_params));
  Region& region = *mig.region;
  Topology& topo = region.topo;
  MigrationTask& task = mig.task;
  task.name = "flat-forklift";

  task.demands = traffic::generate_mesh_demands(region, params.demand);

  // Upgrade set: a seeded greedy maximal independent set, capped at the
  // requested fraction. Independence guarantees every V2 mirror's circuits
  // land on switches that stay active for the whole migration, and that the
  // target graph is isomorphic to the original.
  const int n = static_cast<int>(region.mesh_nodes.size());
  const int want = std::max(
      1, static_cast<int>(std::llround(params.upgrade_fraction * n)));
  util::Rng rng(flat_params.seed ^ 0xC2B2AE3D27D4EB4FULL);
  std::vector<SwitchId> order = region.mesh_nodes;
  rng.shuffle(order);

  std::vector<char> blocked(topo.num_switches(), 0);
  std::vector<SwitchId> upgraded;
  for (const SwitchId sw : order) {
    if (static_cast<int>(upgraded.size()) >= want) break;
    if (blocked[static_cast<std::size_t>(sw)]) continue;
    upgraded.push_back(sw);
    blocked[static_cast<std::size_t>(sw)] = 1;
    for (const CircuitId cid : topo.incident(sw)) {
      blocked[static_cast<std::size_t>(topo.circuit(cid).other(sw))] = 1;
    }
  }
  // Ring order keeps the canonical per-type action order stable.
  std::sort(upgraded.begin(), upgraded.end());

  // Stage one V2 mirror per upgraded switch: same neighbors, higher
  // capacity, absent until its undrain block runs.
  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  std::vector<SwitchId> mirrors;
  for (const SwitchId old_sw : upgraded) {
    const SwitchId v2 = topo.add_switch(
        SwitchRole::kFsw, Generation::kV2, topo.sw(old_sw).loc, kUnsizedPorts,
        ElementState::kAbsent, topo.sw(old_sw).name + "v2");
    mirrors.push_back(v2);
    const std::vector<CircuitId> old_circuits = topo.incident(old_sw);
    for (const CircuitId cid : old_circuits) {
      const topo::Circuit& c = topo.circuit(cid);
      if (c.state == ElementState::kAbsent) continue;
      topo.add_circuit(v2, c.other(old_sw),
                       c.capacity_tbps * params.v2_capacity_factor,
                       ElementState::kAbsent);
    }
  }

  task.action_types = {
      ActionType{0, "drain-flat-v1", OpKind::kDrain, SwitchRole::kFsw,
                 Generation::kV1},
      ActionType{1, "undrain-flat-v2", OpKind::kUndrain, SwitchRole::kFsw,
                 Generation::kV2},
  };
  task.blocks.resize(2);

  const int chunks = policy_chunks(params.policy, params.switch_chunks,
                                   static_cast<int>(upgraded.size()));
  int next_id = 0;
  int chunk_index = 0;
  for (const auto& chunk : chunk_switches(upgraded, chunks)) {
    task.blocks[0].push_back(make_switch_block(
        topo, next_id++, 0,
        "drain-v1/flat-chunk" + std::to_string(chunk_index++), chunk,
        ElementState::kAbsent));
  }
  chunk_index = 0;
  for (const auto& chunk : chunk_switches(mirrors, chunks)) {
    task.blocks[1].push_back(make_switch_block(
        topo, next_id++, 1,
        "undrain-v2/flat-chunk" + std::to_string(chunk_index++), chunk,
        ElementState::kActive));
  }

  cap_endpoint_utilization(topo, task, params.origin_utilization_cap);
  finalize_migration_case(mig, region.params);
  return mig;
}

// ---------------------------------------------------------------------------
// Reconf rewire

namespace {

/// Partitions a stride class into `chunks` node-disjoint blocks: every
/// switch appears in at most one circuit per block. This is what makes the
/// rewire schedulable at port_slack 1 — a block's undrain claims one port
/// per touched switch, not two — and it spreads each drain block evenly
/// around the ring instead of cutting a contiguous arc (whose neighbors
/// would absorb the whole detour and blow through theta). Circuits of a
/// stride class conflict only with their ring neighbors at distance
/// `stride`, so a greedy smallest-part-first pass stays balanced.
std::vector<std::vector<CircuitId>> partition_node_disjoint(
    const Topology& topo, const std::vector<CircuitId>& circuits,
    int chunks) {
  std::vector<std::vector<CircuitId>> parts(
      static_cast<std::size_t>(chunks));
  std::vector<std::unordered_set<SwitchId>> used(
      static_cast<std::size_t>(chunks));
  for (const CircuitId cid : circuits) {
    const topo::Circuit& c = topo.circuit(cid);
    int best = -1;
    for (int k = 0; k < chunks; ++k) {
      const auto ki = static_cast<std::size_t>(k);
      if (used[ki].count(c.a) != 0 || used[ki].count(c.b) != 0) continue;
      if (best < 0 ||
          parts[ki].size() < parts[static_cast<std::size_t>(best)].size()) {
        best = k;
      }
    }
    if (best < 0) {
      // Every part already touches an endpoint (possible only when chunks
      // < 3 on an odd conflict cycle); fall back to the smallest part.
      best = 0;
      for (int k = 1; k < chunks; ++k) {
        if (parts[static_cast<std::size_t>(k)].size() <
            parts[static_cast<std::size_t>(best)].size()) {
          best = k;
        }
      }
    }
    const auto bi = static_cast<std::size_t>(best);
    parts[bi].push_back(cid);
    used[bi].insert(c.a);
    used[bi].insert(c.b);
  }
  parts.erase(std::remove_if(parts.begin(), parts.end(),
                             [](const auto& p) { return p.empty(); }),
              parts.end());
  return parts;
}

}  // namespace

MigrationCase build_reconf_migration(const topo::ReconfParams& reconf_params,
                                     const ReconfMigrationParams& params) {
  MigrationCase mig;
  mig.region = std::make_unique<Region>(topo::build_reconf(reconf_params));
  Region& region = *mig.region;
  MigrationTask& task = mig.task;
  task.name = "reconf-rewire";

  task.demands = traffic::generate_mesh_demands(region, params.demand);

  task.action_types = {
      ActionType{0, "drain-reconf-v1", OpKind::kDrain, SwitchRole::kFsw,
                 Generation::kV1},
      ActionType{1, "undrain-reconf-v2", OpKind::kUndrain, SwitchRole::kFsw,
                 Generation::kV2},
  };
  task.blocks.resize(2);

  // Circuit-only blocks per rewired stride class, partitioned into
  // node-disjoint chunks spread around the ring; without operation blocks
  // every circuit is its own action (the "w/o OB" ablation).
  int next_id = 0;
  bool rewires = false;
  for (const topo::MeshStrideCircuits& group : region.mesh_strides) {
    if (group.shared) continue;
    rewires = true;
    const ActionTypeId type = group.gen == Generation::kV1 ? 0 : 1;
    const ElementState state = group.gen == Generation::kV1
                                   ? ElementState::kAbsent
                                   : ElementState::kActive;
    const char* tag = group.gen == Generation::kV1 ? "drain-v1/stride"
                                                   : "undrain-v2/stride";
    const int chunks = policy_chunks(params.policy, params.chunks_per_stride,
                                     static_cast<int>(group.circuits.size()));
    int chunk_index = 0;
    for (const auto& chunk :
         partition_node_disjoint(region.topo, group.circuits, chunks)) {
      task.blocks[type].push_back(make_circuit_block(
          next_id++, type,
          std::string(tag) + std::to_string(group.stride) + "/c" +
              std::to_string(chunk_index++),
          chunk, state));
    }
  }
  if (!rewires) {
    throw std::invalid_argument(
        "build_reconf_migration: v1 and v2 stride patterns are identical — "
        "nothing to rewire");
  }

  cap_endpoint_utilization(region.topo, task,
                           params.origin_utilization_cap);
  finalize_migration_case(mig, region.params);
  return mig;
}

}  // namespace klotski::migration
