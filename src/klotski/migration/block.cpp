#include "klotski/migration/block.h"

#include <algorithm>
#include <unordered_set>

namespace klotski::migration {

void OperationBlock::apply(topo::Topology& topo) const {
  for (const ElementOp& op : ops) {
    if (op.kind == ElementOp::Kind::kSwitch) {
      topo.set_switch_state(op.id, op.to);
    } else {
      topo.set_circuit_state(op.id, op.to);
    }
  }
}

void OperationBlock::apply_prefix(topo::Topology& topo,
                                  std::size_t count) const {
  const std::size_t n = std::min(count, ops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const ElementOp& op = ops[i];
    if (op.kind == ElementOp::Kind::kSwitch) {
      topo.set_switch_state(op.id, op.to);
    } else {
      topo.set_circuit_state(op.id, op.to);
    }
  }
}

void OperationBlock::unapply(topo::Topology& topo,
                             const topo::TopologyState& original) const {
  for (const ElementOp& op : ops) {
    if (op.kind == ElementOp::Kind::kSwitch) {
      topo.set_switch_state(
          op.id, original.switch_states[static_cast<std::size_t>(op.id)]);
    } else {
      topo.set_circuit_state(
          op.id, original.circuit_states[static_cast<std::size_t>(op.id)]);
    }
  }
}

int OperationBlock::switch_count() const {
  int n = 0;
  for (const ElementOp& op : ops) {
    if (op.kind == ElementOp::Kind::kSwitch) ++n;
  }
  return n;
}

int OperationBlock::circuit_count() const {
  int n = 0;
  for (const ElementOp& op : ops) {
    if (op.kind == ElementOp::Kind::kCircuit) ++n;
  }
  return n;
}

double OperationBlock::touched_capacity_tbps(const topo::Topology& topo) const {
  double total = 0.0;
  for (const ElementOp& op : ops) {
    if (op.kind == ElementOp::Kind::kCircuit) {
      total += topo.circuit(op.id).capacity_tbps;
    }
  }
  return total;
}

void add_switch_with_circuits(const topo::Topology& topo, topo::SwitchId sw,
                              topo::ElementState state,
                              OperationBlock& block) {
  block.ops.push_back(
      ElementOp{ElementOp::Kind::kSwitch, sw, state});
  for (const topo::CircuitId cid : topo.incident(sw)) {
    block.ops.push_back(ElementOp{ElementOp::Kind::kCircuit, cid, state});
  }
}

std::vector<std::vector<topo::SwitchId>> chunk_switches(
    const std::vector<topo::SwitchId>& items, int chunks) {
  const int n = static_cast<int>(items.size());
  const int k = std::clamp(chunks, 1, std::max(1, n));
  std::vector<std::vector<topo::SwitchId>> out;
  if (n == 0) return out;
  out.reserve(static_cast<std::size_t>(k));
  const int base = n / k;
  const int extra = n % k;
  int cursor = 0;
  for (int i = 0; i < k; ++i) {
    const int size = base + (i < extra ? 1 : 0);
    if (size == 0) continue;
    out.emplace_back(items.begin() + cursor, items.begin() + cursor + size);
    cursor += size;
  }
  return out;
}

std::vector<std::vector<topo::CircuitId>> chunk_circuits(
    const std::vector<topo::CircuitId>& items, int chunks) {
  const int n = static_cast<int>(items.size());
  const int k = std::clamp(chunks, 1, std::max(1, n));
  std::vector<std::vector<topo::CircuitId>> out;
  if (n == 0) return out;
  out.reserve(static_cast<std::size_t>(k));
  const int base = n / k;
  const int extra = n % k;
  int cursor = 0;
  for (int i = 0; i < k; ++i) {
    const int size = base + (i < extra ? 1 : 0);
    if (size == 0) continue;
    out.emplace_back(items.begin() + cursor, items.begin() + cursor + size);
    cursor += size;
  }
  return out;
}

OperationBlock make_switch_block(const topo::Topology& topo, int id,
                                 ActionTypeId type, std::string label,
                                 const std::vector<topo::SwitchId>& switches,
                                 topo::ElementState state) {
  OperationBlock block;
  block.id = id;
  block.type = type;
  block.label = std::move(label);
  // Unlike add_switch_with_circuits, a multi-switch block lists a circuit
  // shared by two of its switches only once.
  std::unordered_set<topo::CircuitId> seen;
  for (const topo::SwitchId sw : switches) {
    block.ops.push_back(ElementOp{ElementOp::Kind::kSwitch, sw, state});
    for (const topo::CircuitId cid : topo.incident(sw)) {
      if (seen.insert(cid).second) {
        block.ops.push_back(ElementOp{ElementOp::Kind::kCircuit, cid, state});
      }
    }
  }
  return block;
}

OperationBlock make_circuit_block(int id, ActionTypeId type, std::string label,
                                  const std::vector<topo::CircuitId>& circuits,
                                  topo::ElementState state) {
  OperationBlock block;
  block.id = id;
  block.type = type;
  block.label = std::move(label);
  for (const topo::CircuitId cid : circuits) {
    block.ops.push_back(ElementOp{ElementOp::Kind::kCircuit, cid, state});
  }
  return block;
}

}  // namespace klotski::migration
