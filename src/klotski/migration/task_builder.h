// Builders for the three production migration types of §2.4:
//
//  * HGRID V1 -> V2: replace every FADU/FAUU in the HGRID layer with a new
//    generation that has more grids (nodes) and therefore more inter-DC
//    capacity. Old grids must be decommissioned to free SSW/EB/DR ports for
//    the staged V2 hardware.
//  * SSW forklift: replace all spine switches of one DC with new-generation
//    hardware of higher capacity, plane by plane. FSW/FADU ports gate
//    onboarding per plane.
//  * DMAG: introduce the MA regional-aggregation layer between FAUUs and the
//    EB border routers; drain the direct FAUU-EB circuits (grouped by EB,
//    §5), undrain MAs, then retire the legacy FAUU-DR shortcut circuits.
//    This migration *adds a switch role*, the property that defeats
//    symmetry-only planners (§8: Janus assumes unchanged symmetry).
//
// Every builder: (1) synthesizes the region, (2) generates the calibrated
// demand set from the original topology, (3) stages the new hardware as
// absent elements, (4) emits operation blocks per the §5 organization
// policy, and (5) computes the target state and re-tightens port budgets so
// the port constraints (Eq. 6) gate exactly the orderings the paper
// describes.
#pragma once

#include "klotski/migration/policy.h"
#include "klotski/migration/task.h"
#include "klotski/topo/builder.h"
#include "klotski/traffic/generator.h"

namespace klotski::migration {

struct HgridMigrationParams {
  /// Number of V2 grids; 0 means ceil(1.5 * v1 grids) ("more nodes").
  int v2_grids = 0;
  /// V2 FADUs per grid per DC; 0 means same as V1.
  int v2_fadus_per_grid_per_dc = 0;
  /// V2 FAUUs per grid; 0 means same as V1.
  int v2_fauus_per_grid = 0;

  PolicyParams policy;
  /// Base chunking: FADU operation blocks per (grid, dc) group and FAUU
  /// operation blocks per grid.
  int fadu_chunks_per_grid_dc = 1;
  int fauu_chunks_per_grid = 1;

  traffic::DemandGenParams demand;
};

struct SswForkliftParams {
  /// DC whose spine is forklifted; -1 means all DCs.
  int dc = 0;
  /// Capacity multiplier of V2 SSW circuits ("more capacity").
  double v2_capacity_factor = 1.5;

  PolicyParams policy;
  /// Base operation blocks per plane.
  int blocks_per_plane = 2;

  traffic::DemandGenParams demand;
};

struct DmagMigrationParams {
  /// MA switches introduced per EB; grids are partitioned across them.
  int ma_per_eb = 2;
  /// Circuit capacities of the new MA layer; 0 means capacity-preserving
  /// defaults: a FAUU ends the migration with MA uplinks replacing both its
  /// EB and DR circuits, so FAUU-MA circuits default to cap_fauu_eb +
  /// cap_fauu_dr, and MA-EB trunks inherit cap_eb_ebb.
  double cap_fauu_ma = 0.0;
  double cap_ma_eb = 0.0;

  PolicyParams policy;

  traffic::DemandGenParams demand;
};

MigrationCase build_hgrid_migration(const topo::RegionParams& region_params,
                                    const HgridMigrationParams& params = {});

MigrationCase build_ssw_forklift(const topo::RegionParams& region_params,
                                 const SswForkliftParams& params = {});

MigrationCase build_dmag_migration(const topo::RegionParams& region_params,
                                   const DmagMigrationParams& params = {});

/// Shared tail of every task builder: captures the original state, derives
/// the target state by applying all staged blocks, re-tightens port budgets
/// against `region_params`, and validates the task (throws on failure).
void finalize_migration_case(MigrationCase& mig,
                             const topo::RegionParams& region_params);

/// Recomputes every switch's max_ports as
///   max(ports occupied in the original state, ports occupied in the target
///       state) + role slack,
/// so that budgets admit both endpoints of the migration while still gating
/// transient over-subscription. Called by all task builders after staging.
void tighten_port_budgets(MigrationTask& task,
                          const topo::RegionParams& region_params);

}  // namespace klotski::migration
