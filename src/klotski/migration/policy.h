// Organization policy for operation blocks (§5).
//
// The policy decides how many operation blocks a group of equivalent /
// co-located switches is split into:
//  * HGRID:       one grid is one operation block neighborhood; its FADU
//                 groups (per DC) and FAUU groups are chunked.
//  * SSW:         SSWs on a plane are split into several operation blocks.
//  * DMAG:        MAs/circuits are grouped by the EB they connect to,
//                 releasing the most ports per action.
//
// `block_scale` reproduces the Figure 11 sweep (0.25x fewer, coarser blocks
// ... 4x more, finer blocks); `use_operation_blocks = false` degrades to
// symmetry-block granularity, the "Klotski w/o OB" ablation of Figure 10.
#pragma once

namespace klotski::migration {

struct PolicyParams {
  double block_scale = 1.0;
  bool use_operation_blocks = true;
};

/// Number of chunks a group of `group_size` co-located switches is split
/// into under this policy: base_chunks scaled by block_scale, clamped to
/// [1, group_size]. Without operation blocks every switch is its own block.
int policy_chunks(const PolicyParams& policy, int base_chunks,
                  int group_size);

}  // namespace klotski::migration
