#include "klotski/migration/policy.h"

#include <algorithm>
#include <cmath>

namespace klotski::migration {

int policy_chunks(const PolicyParams& policy, int base_chunks,
                  int group_size) {
  if (group_size <= 0) return 0;
  if (!policy.use_operation_blocks) return group_size;
  const double scaled = std::round(static_cast<double>(base_chunks) *
                                   policy.block_scale);
  return std::clamp(static_cast<int>(scaled), 1, group_size);
}

}  // namespace klotski::migration
