#include "klotski/migration/action.h"

namespace klotski::migration {

std::string to_string(OpKind op) {
  return op == OpKind::kDrain ? "drain" : "undrain";
}

}  // namespace klotski::migration
