// A migration task: the combined original+staged topology, the original and
// target element states, the action types, and the ordered operation blocks
// of each type.
//
// Within one action type the blocks are interchangeable for constraint
// satisfiability (they are unions of equivalent symmetry blocks), so a plan
// only chooses *how many* blocks of each type have run and in which type
// order — the i-th executed block of a type is always blocks[type][i]. This
// is what makes the compact topology representation of §4.2 exact.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "klotski/migration/block.h"
#include "klotski/topo/builder.h"
#include "klotski/traffic/demand.h"

namespace klotski::migration {

struct MigrationTask {
  std::string name;

  /// Combined graph: original elements plus staged (absent) new hardware.
  /// Non-owning; the owner (usually a MigrationCase) must outlive the task.
  topo::Topology* topo = nullptr;

  topo::TopologyState original_state;
  topo::TopologyState target_state;

  std::vector<ActionType> action_types;
  /// blocks[t] is the execution order of type t's blocks.
  std::vector<std::vector<OperationBlock>> blocks;

  traffic::DemandSet demands;

  int num_action_types() const {
    return static_cast<int>(action_types.size());
  }
  std::vector<std::int32_t> actions_per_type() const;
  int total_actions() const;

  /// Switch / circuit / capacity footprint across all blocks (Table 1).
  int operated_switches() const;
  int operated_circuits() const;
  double operated_capacity_tbps() const;

  /// Restores the original element states onto the topology.
  void reset_to_original() const { original_state.restore(*topo); }

  /// Checks internal consistency: applying every block to the original
  /// state must produce exactly the target state, block types must be in
  /// range, and ops must reference valid elements. Returns an error message
  /// or empty string. Leaves the topology in its original state.
  std::string validate() const;
};

/// Owns the region (and therefore the topology) a task points into.
/// The region lives behind a unique_ptr so MigrationCase is movable without
/// invalidating task.topo.
struct MigrationCase {
  std::unique_ptr<topo::Region> region;
  MigrationTask task;
};

}  // namespace klotski::migration
