// Symmetry blocks and operation blocks (§4.1).
//
// Equivalent switches (same role, generation, and position class) form a
// symmetry block; operating them in any order yields equivalent states.
// Klotski merges neighboring symmetry blocks into one *operation block*
// based on locality — switches physically close together are operated
// simultaneously at little extra cost. An operation block is the unit of
// one action in a migration plan.
#pragma once

#include <string>
#include <vector>

#include "klotski/migration/action.h"
#include "klotski/topo/topology.h"

namespace klotski::migration {

/// One primitive state flip inside a block.
struct ElementOp {
  enum class Kind : std::uint8_t { kSwitch, kCircuit };
  Kind kind = Kind::kSwitch;
  std::int32_t id = -1;
  topo::ElementState to = topo::ElementState::kActive;

  friend bool operator==(const ElementOp&, const ElementOp&) = default;
};

struct OperationBlock {
  int id = -1;
  ActionTypeId type = kNoAction;
  std::string label;
  std::vector<ElementOp> ops;

  /// Applies all ops to the topology. Blocks may overlap in circuits (two
  /// blocks may both set a shared circuit absent); ops are state
  /// assignments, so overlapping applications commute.
  void apply(topo::Topology& topo) const;

  /// Applies only the first min(count, ops.size()) ops — a step that failed
  /// partway through the config push (§7.2 "failures during operation
  /// duration") leaves exactly such a torn state behind. The caller must
  /// roll back (e.g. TopologyState::restore of a pre-step snapshot) before
  /// the topology is used for planning again.
  void apply_prefix(topo::Topology& topo, std::size_t count) const;

  /// Inverse of apply(): restores every touched element to its state in
  /// `original` (drain <-> undrain, add <-> remove). Exact only when no
  /// *other currently applied* block touches the same elements — a reverted
  /// shared circuit would lose the surviving block's assignment. The state
  /// evaluator uses this fast inverse for overlap-free blocks and resolves
  /// shared elements from the per-element op lists instead.
  void unapply(topo::Topology& topo, const topo::TopologyState& original) const;

  int switch_count() const;
  int circuit_count() const;

  /// Sum of capacity over circuits this block touches (Tbps; the "affected
  /// capacity" statistic of Table 1).
  double touched_capacity_tbps(const topo::Topology& topo) const;
};

/// Helper used by the task builders: appends ops that set a switch and all
/// of its incident circuits to `state`.
void add_switch_with_circuits(const topo::Topology& topo, topo::SwitchId sw,
                              topo::ElementState state, OperationBlock& block);

/// Splits `items` into `chunks` nearly-equal contiguous chunks
/// (first chunks get the remainder). chunks is clamped to [1, items.size()].
std::vector<std::vector<topo::SwitchId>> chunk_switches(
    const std::vector<topo::SwitchId>& items, int chunks);

/// Same contiguous chunking over circuits.
std::vector<std::vector<topo::CircuitId>> chunk_circuits(
    const std::vector<topo::CircuitId>& items, int chunks);

/// Builds one operation block that moves `switches` (and all their incident
/// circuits) to `state`.
OperationBlock make_switch_block(const topo::Topology& topo, int id,
                                 ActionTypeId type, std::string label,
                                 const std::vector<topo::SwitchId>& switches,
                                 topo::ElementState state);

/// Builds one circuit-only operation block.
OperationBlock make_circuit_block(int id, ActionTypeId type, std::string label,
                                  const std::vector<topo::CircuitId>& circuits,
                                  topo::ElementState state);

}  // namespace klotski::migration
