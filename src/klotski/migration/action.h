// Actions and action types (§3).
//
// A migration is a sequence of actions on operation blocks. Every action has
// an action type determined by the kind of equipment it touches and the
// operation performed on it (drain-and-decommission vs install-and-undrain).
// Consecutive actions of the same type can be executed by field operators in
// parallel at negligible extra cost; a change of action type costs one unit
// of operational time (Eq. 1), generalized by f_cost(x) = 1 + alpha(x-1)
// (§5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "klotski/topo/switch_types.h"

namespace klotski::migration {

using ActionTypeId = std::int32_t;
inline constexpr ActionTypeId kNoAction = -1;

/// Operation kinds. Draining in this model includes the physical
/// decommission that frees ports/space (§2.4: "remove/decommission the old
/// switches first to create space"); undraining includes installation.
enum class OpKind : std::uint8_t { kDrain, kUndrain };

std::string to_string(OpKind op);

struct ActionType {
  ActionTypeId id = kNoAction;
  std::string label;  // e.g. "drain-hgrid-v1" or "undrain-ssw-v2"
  OpKind op = OpKind::kDrain;
  topo::SwitchRole role = topo::SwitchRole::kFadu;  // representative role
  topo::Generation gen = topo::Generation::kV1;
};

}  // namespace klotski::migration
