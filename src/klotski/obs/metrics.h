// Thread-safe metrics registry: counters, gauges, and histograms backed by
// atomics, so instrumented code can run unchanged on ParallelEvaluator
// worker threads.
//
// Recording is gated on a process-global enabled flag (set by the tools'
// --metrics-out flag, off by default): a disabled instrument is one relaxed
// atomic load and a predictable branch, so the planner hot paths pay
// near-zero cost when nobody is watching (verified by the BM_* benches).
// Handles returned by Registry::counter()/gauge()/histogram() are stable for
// the registry's lifetime and may be cached across calls and threads.
//
// Metric names are dotted paths, subsystem first: "evaluator.sat_cache_hits",
// "router.group_recomputes", "planner.states_expanded" (see DESIGN.md
// "Observability" for the full catalogue and the thread-invariance contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "klotski/json/json.h"

namespace klotski::obs {

/// Process-global metrics switch; all instruments no-op while false.
bool metrics_enabled();
void set_metrics_enabled(bool on);

class Counter {
 public:
  /// Adds `delta` when metrics are enabled; relaxed, monotonic.
  void inc(long long delta = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` when larger (high-water marks).
  void set_max(double v) {
    if (!metrics_enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram: bucket i counts observations <= kBucketBounds[i],
/// the last bucket is the +inf overflow. Count/sum/min/max are exact.
class Histogram {
 public:
  static constexpr int kNumBuckets = 20;
  /// Upper bounds: 1e-6 * 4^i for i in [0, kNumBuckets-2], then +inf —
  /// covers microseconds to hours when observing seconds.
  static double bucket_bound(int i);

  void observe(double v);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  long long bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<long long> buckets_[kNumBuckets] = {};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named-instrument registry. Instruments are created on first use and live
/// as long as the registry; lookups are mutex-protected (do them once, at
/// construction time, not per event).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every instrument's value; registrations (and handles) survive.
  void reset_values();

  /// {"schema": "klotski.metrics.v1", "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count, sum, min, max, buckets: [{le, count}]}}}.
  /// Names are emitted in sorted order.
  json::Value to_json() const;

  /// End-of-run summary rendered with util::Table ("metric | value" rows,
  /// zero-valued instruments omitted).
  std::string render_table(const std::string& title = "metrics") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace klotski::obs
