#include "klotski/obs/trace.h"

namespace klotski::obs {

namespace {
std::atomic<bool> g_trace_enabled{false};

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::int32_t t_depth = 0;

std::int64_t micros_since(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - from)
      .count();
}
}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  process_epoch();  // pin the epoch no later than enablement
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // intentionally leaked
  return *instance;
}

void Tracer::record(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<Tracer::Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

json::Value Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object root;
  root["displayTimeUnit"] = json::Value(std::string("ms"));
  json::Array events;
  for (const Event& e : events_) {
    json::Object entry;
    entry["name"] = json::Value(e.name);
    entry["ph"] = json::Value(std::string("X"));
    entry["ts"] = json::Value(static_cast<std::int64_t>(e.ts_us));
    entry["dur"] = json::Value(static_cast<std::int64_t>(e.dur_us));
    entry["pid"] = json::Value(static_cast<std::int64_t>(1));
    entry["tid"] = json::Value(static_cast<std::int64_t>(e.tid));
    json::Object args;
    args["depth"] = json::Value(static_cast<std::int64_t>(e.depth));
    entry["args"] = json::Value(std::move(args));
    events.push_back(json::Value(std::move(entry)));
  }
  root["traceEvents"] = json::Value(std::move(events));
  return json::Value(std::move(root));
}

Span::Span(std::string name) {
  if (!trace_enabled()) return;
  active_ = true;
  name_ = std::move(name);
  depth_ = t_depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  --t_depth;
  Tracer::Event event;
  event.name = std::move(name_);
  event.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    start_ - process_epoch())
                    .count();
  event.dur_us = micros_since(start_);
  event.tid = current_tid();
  event.depth = depth_;
  Tracer::global().record(std::move(event));
}

}  // namespace klotski::obs
