#include "klotski/obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "klotski/util/table.h"

namespace klotski::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Shortest decimal form that still reads well in a table.
std::string format_double(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

double Histogram::bucket_bound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return 1e-6 * std::pow(4.0, i);
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  int bucket = 0;
  while (bucket < kNumBuckets - 1 && v > bucket_bound(bucket)) ++bucket;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  const long long n = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  // First observation seeds min/max; CAS races resolve to the true extremes.
  if (n == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry* instance = new Registry();  // intentionally leaked
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

json::Value Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object root;
  root["schema"] = json::Value(std::string("klotski.metrics.v1"));

  json::Object counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = json::Value(static_cast<std::int64_t>(c->value()));
  }
  root["counters"] = json::Value(std::move(counters));

  json::Object gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = json::Value(g->value());
  root["gauges"] = json::Value(std::move(gauges));

  json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    json::Object entry;
    entry["count"] = json::Value(static_cast<std::int64_t>(h->count()));
    entry["sum"] = json::Value(h->sum());
    entry["min"] = json::Value(h->min());
    entry["max"] = json::Value(h->max());
    json::Array buckets;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      json::Object bucket;
      const double bound = Histogram::bucket_bound(i);
      // +inf is not representable in JSON; the overflow bucket uses null.
      bucket["le"] = std::isinf(bound) ? json::Value(nullptr)
                                       : json::Value(bound);
      bucket["count"] =
          json::Value(static_cast<std::int64_t>(h->bucket_count(i)));
      buckets.push_back(json::Value(std::move(bucket)));
    }
    entry["buckets"] = json::Value(std::move(buckets));
    histograms[name] = json::Value(std::move(entry));
  }
  root["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(root));
}

std::string Registry::render_table(const std::string& title) const {
  std::lock_guard<std::mutex> lock(mu_);
  util::Table table({"metric", "value"});
  table.set_title(title);
  for (const auto& [name, c] : counters_) {
    if (c->value() == 0) continue;
    table.add_row({name, std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    if (g->value() == 0.0) continue;
    table.add_row({name, format_double(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    if (h->count() == 0) continue;
    table.add_row({name, std::to_string(h->count()) + " obs, sum " +
                             format_double(h->sum()) + ", max " +
                             format_double(h->max())});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace klotski::obs
