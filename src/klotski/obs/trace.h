// Scoped nested trace spans with wall-clock timing, exportable in Chrome
// trace_event format (chrome://tracing, Perfetto, speedscope all read it).
//
// Usage: `obs::Span span("plan/astar");` — the span measures from
// construction to destruction and records one complete ("ph":"X") event.
// Spans nest lexically; the per-thread nesting depth is recorded in each
// event's args so tests (and humans) can check span structure without
// reconstructing it from timestamps.
//
// Like metrics, tracing is off by default: a disabled Span construction is
// one relaxed atomic load. Recording takes a mutex once per span end — spans
// belong on operational boundaries (a planner run, a pipeline stage, a
// replan round), not in per-state inner loops.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "klotski/json/json.h"

namespace klotski::obs {

/// Process-global tracing switch; Span no-ops while false.
bool trace_enabled();
void set_trace_enabled(bool on);

class Tracer {
 public:
  struct Event {
    std::string name;
    std::int64_t ts_us = 0;   // start, microseconds since process start
    std::int64_t dur_us = 0;  // wall-clock duration
    std::uint32_t tid = 0;    // dense per-process thread number
    std::int32_t depth = 0;   // nesting depth on that thread (0 = outermost)
  };

  static Tracer& global();

  void record(Event event);
  void clear();
  std::size_t size() const;
  std::vector<Event> events() const;

  /// {"displayTimeUnit": "ms", "traceEvents": [{name, ph: "X", ts, dur,
  ///  pid, tid, args: {depth}}, ...]} — the Chrome trace_event JSON shape.
  json::Value to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span; records into Tracer::global() when tracing is enabled at
/// construction time.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace klotski::obs
