// Synthesizer for Meta-style regional DCN topologies (§2.1).
//
// A region is a set of DC buildings, each with a three-layer fabric
// (RSW - FSW - SSW organized in pods and planes), interconnected by an
// HGRID fabric-aggregation layer (FADU / FAUU grids), which reaches the
// backbone through EB border routers and DR datacenter routers down to
// EBB core routers. The DMAG migration later inserts an MA layer between
// FAUU and EB.
//
// The builder reproduces the structural properties the planner depends on:
//  * plane/pod symmetry inside each fabric,
//  * per-grid locality in the HGRID layer,
//  * two meshing patterns between SSWs and the aggregation layer (§2.2,
//    Figure 2(c)),
//  * per-DC generation heterogeneity (4-plane vs 8-plane DCs, Figure 2(d)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "klotski/topo/topology.h"

namespace klotski::topo {

/// Topology family of a synthesized region. Clos is the paper's Meta-style
/// hierarchy; flat and reconf are the non-Clos families of DESIGN.md §12
/// (RNG-style random flat fabrics and reconfigurable circulant meshes).
enum class TopologyFamily : std::uint8_t { kClos, kFlat, kReconf };

std::string to_string(TopologyFamily family);
TopologyFamily family_from_string(const std::string& text);
std::vector<TopologyFamily> all_families();

/// How FADUs mesh with the spine planes (Figure 2(c)).
enum class MeshPattern : std::uint8_t {
  /// FADU k serves exactly plane (k mod planes): one-to-one plane mapping.
  kPlaneAligned,
  /// FADU k connects to SSW j iff j mod fadu_count == k: smaller capacity
  /// per node, no one-to-one mapping with downstream planes.
  kInterleaved,
};

/// Per-DC fabric shape. fsws_per_pod always equals `planes` in this model:
/// FSW i of a pod serves spine plane i.
struct FabricParams {
  int pods = 2;
  int rsws_per_pod = 4;
  int planes = 4;          // 4 (older generation) or 8 (newer)
  int ssws_per_plane = 2;
  int rsw_fsw_links = 1;   // parallel circuits per RSW-FSW pair
};

/// Region-wide parameters.
struct RegionParams {
  int dcs = 2;
  /// One entry per DC; if fewer entries are given the last one is
  /// replicated (a single entry means a homogeneous region).
  std::vector<FabricParams> fabrics = {FabricParams{}};

  // HGRID layer (generation hgrid_gen).
  int grids = 2;
  int fadus_per_grid_per_dc = 2;
  int fauus_per_grid = 2;
  Generation hgrid_gen = Generation::kV1;
  MeshPattern mesh = MeshPattern::kPlaneAligned;

  // Backbone boundary.
  int ebs = 2;
  int drs = 2;
  int ebbs = 2;

  // Circuit capacities (Tbps per direction).
  double cap_rsw_fsw = 0.1;
  double cap_fsw_ssw = 0.2;
  double cap_ssw_fadu = 0.4;
  double cap_fadu_fauu = 0.8;
  double cap_fauu_eb = 0.8;
  double cap_fauu_dr = 0.8;
  double cap_eb_ebb = 1.6;
  double cap_dr_ebb = 1.6;

  /// Extra physical ports beyond initial occupancy, per role. Tight budgets
  /// are what force "decommission before onboard" orderings (§2.3).
  int port_slack_fabric = 2;  // RSW / FSW ports are never contended
  int port_slack_ssw = 0;     // SSW ports gate HGRID V1->V2
  int port_slack_agg = 2;     // FADU/FAUU/DR headroom
  int port_slack_eb = 0;      // EB ports gate the DMAG migration
  int port_slack_ebb = 8;
};

/// One stride class of a reconfigurable mesh: all circuits i -> (i+stride)
/// mod N, in ring-index order. `shared` strides belong to both the V1 and
/// the V2 wiring pattern and are never operated by the rewire migration.
struct MeshStrideCircuits {
  int stride = 0;
  Generation gen = Generation::kV1;  // kV2 = staged target-only chords
  bool shared = false;
  std::vector<CircuitId> circuits;
};

/// A built region: the topology plus the index structures the traffic
/// generator and the migration task builders navigate by.
struct Region {
  Topology topo;
  RegionParams params;
  TopologyFamily family = TopologyFamily::kClos;

  // Fabric indexes. rsws[dc], fsws[dc], ssws[dc][plane] -> switch ids.
  std::vector<std::vector<SwitchId>> rsws;
  std::vector<std::vector<SwitchId>> fsws;
  std::vector<std::vector<std::vector<SwitchId>>> ssws;

  // HGRID indexes. fadus[grid][dc], fauus[grid] -> switch ids.
  std::vector<std::vector<std::vector<SwitchId>>> fadus;
  std::vector<std::vector<SwitchId>> fauus;

  std::vector<SwitchId> ebs;
  std::vector<SwitchId> drs;
  std::vector<SwitchId> ebbs;

  // Circuits between FAUUs and EBs, grouped by EB (the DMAG migration
  // drains these; grouping by EB mirrors the §5 organization policy).
  std::vector<std::vector<CircuitId>> fauu_eb_circuits_by_eb;

  // Non-Clos family annotations (families.h); empty for Clos regions.
  // mesh_nodes lists the family's switches in ring order (flat + reconf);
  // mesh_strides records the reconf wiring pattern per stride class.
  std::vector<SwitchId> mesh_nodes;
  std::vector<MeshStrideCircuits> mesh_strides;

  /// Fabric parameters effective for a DC (after replication).
  const FabricParams& fabric(int dc) const;

  int num_dcs() const { return params.dcs; }
  int num_grids() const { return params.grids; }
};

/// Builds a region; throws std::invalid_argument on inconsistent params.
Region build_region(const RegionParams& params);

}  // namespace klotski::topo
