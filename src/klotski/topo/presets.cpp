#include "klotski/topo/presets.h"

#include <algorithm>
#include <stdexcept>

namespace klotski::topo {

std::string to_string(PresetId id) {
  switch (id) {
    case PresetId::kA: return "A";
    case PresetId::kB: return "B";
    case PresetId::kC: return "C";
    case PresetId::kD: return "D";
    case PresetId::kE: return "E";
  }
  return "?";
}

std::vector<PresetId> all_presets() {
  return {PresetId::kA, PresetId::kB, PresetId::kC, PresetId::kD,
          PresetId::kE};
}

namespace {

RegionParams preset_a() {
  RegionParams p;
  p.dcs = 1;
  FabricParams fab;
  fab.pods = 2;
  fab.rsws_per_pod = 6;
  fab.planes = 2;
  fab.ssws_per_plane = 2;
  p.fabrics = {fab};
  p.grids = 2;
  p.fadus_per_grid_per_dc = 2;
  p.fauus_per_grid = 2;
  p.ebs = 2;
  p.drs = 2;
  p.ebbs = 2;
  return p;
}

RegionParams preset_b() {
  RegionParams p;
  p.dcs = 2;
  FabricParams fab;
  fab.pods = 3;
  fab.rsws_per_pod = 8;
  fab.planes = 4;
  fab.ssws_per_plane = 2;
  fab.rsw_fsw_links = 2;
  p.fabrics = {fab};
  p.grids = 2;
  p.fadus_per_grid_per_dc = 2;
  p.fauus_per_grid = 4;
  p.ebs = 2;
  p.drs = 2;
  p.ebbs = 2;
  return p;
}

RegionParams preset_c() {
  RegionParams p;
  p.dcs = 2;
  FabricParams fab;
  fab.pods = 8;
  fab.rsws_per_pod = 24;
  fab.planes = 4;
  fab.ssws_per_plane = 8;
  fab.rsw_fsw_links = 4;
  p.fabrics = {fab};
  p.grids = 4;
  p.fadus_per_grid_per_dc = 4;
  p.fauus_per_grid = 8;
  p.ebs = 4;
  p.drs = 4;
  p.ebbs = 4;
  // Border trunks must absorb the whole region's north-south traffic.
  p.cap_eb_ebb = 3.2;
  p.cap_dr_ebb = 3.2;
  return p;
}

RegionParams preset_d() {
  RegionParams p;
  p.dcs = 3;
  // Heterogeneous generations (Figure 2(d)): two 4-plane DCs and one
  // upgraded 8-plane DC.
  FabricParams fab4;
  fab4.pods = 10;
  fab4.rsws_per_pod = 24;
  fab4.planes = 4;
  fab4.ssws_per_plane = 8;
  fab4.rsw_fsw_links = 6;
  FabricParams fab8 = fab4;
  fab8.planes = 8;
  fab8.ssws_per_plane = 4;
  fab8.rsw_fsw_links = 3;
  p.fabrics = {fab4, fab4, fab8};
  p.grids = 4;
  p.fadus_per_grid_per_dc = 8;  // multiple of both 4 and 8 planes
  p.fauus_per_grid = 8;
  p.ebs = 4;
  p.drs = 4;
  p.ebbs = 4;
  p.cap_eb_ebb = 4.8;
  p.cap_dr_ebb = 4.8;
  return p;
}

RegionParams preset_e() {
  RegionParams p;
  p.dcs = 3;
  FabricParams fab;
  fab.pods = 60;
  fab.rsws_per_pod = 48;
  fab.planes = 4;
  fab.ssws_per_plane = 36;
  fab.rsw_fsw_links = 2;
  p.fabrics = {fab};
  p.grids = 8;
  p.fadus_per_grid_per_dc = 8;
  p.fauus_per_grid = 16;
  p.ebs = 8;
  p.drs = 8;
  p.ebbs = 8;
  // FAUU access circuits carry the whole region's north-south traffic; the
  // DMAG migration halves a grid's direct uplinks at its worst boundary
  // (all EB groups drained, DR retirement pending) while shortest-path
  // ECMP still ignores the staged MA layer — the §7.1 phenomenon. Size the
  // layer so that boundary stays under theta.
  p.cap_fauu_eb = 1.2;
  p.cap_fauu_dr = 1.2;
  // EB trunks alone must absorb all egress after the DMAG migration retires
  // the DR shortcut (the E-DMAG target keeps only the EB path northbound).
  p.cap_eb_ebb = 16.0;
  p.cap_dr_ebb = 12.8;
  return p;
}

/// Shrinks the fabric shape (not the HGRID block structure) so reduced
/// benches keep the same planner search space but cheap constraint checks.
/// Aggregation-layer capacities are scaled down with the fabric so that the
/// SSW->FADU uplink layer remains the binding capacity — at full scale it is
/// naturally the thinnest layer, and the migration experiments depend on
/// draining it being the constraint that forces batched plans.
RegionParams shrink_fabric(RegionParams p, int divisor) {
  int fabric_shrink = 1;
  for (FabricParams& fab : p.fabrics) {
    const int before = fab.pods * fab.rsws_per_pod * fab.rsw_fsw_links;
    fab.pods = std::max(1, fab.pods / divisor);
    fab.rsws_per_pod = std::max(2, fab.rsws_per_pod / divisor);
    fab.ssws_per_plane = std::max(1, fab.ssws_per_plane / divisor);
    fab.rsw_fsw_links = 1;
    const int after = fab.pods * fab.rsws_per_pod * fab.rsw_fsw_links;
    fabric_shrink = std::max(fabric_shrink, before / std::max(1, after));
  }
  // Thin the layers above the spine by the same overall factor the RSW
  // uplink layer shrank, restoring the full-scale capacity ordering
  // (uplink < spine < RSW uplink).
  const double f = static_cast<double>(fabric_shrink);
  p.cap_ssw_fadu /= f;
  p.cap_fadu_fauu /= f;
  p.cap_fauu_eb /= f;
  p.cap_fauu_dr /= f;
  p.cap_eb_ebb /= f;
  p.cap_dr_ebb /= f;
  return p;
}

}  // namespace

RegionParams preset_params(PresetId id, PresetScale scale) {
  RegionParams p;
  int reduce = 1;
  switch (id) {
    case PresetId::kA:
      p = preset_a();
      reduce = 1;  // A is already tiny
      break;
    case PresetId::kB:
      p = preset_b();
      reduce = 1;
      break;
    case PresetId::kC:
      p = preset_c();
      reduce = 2;
      break;
    case PresetId::kD:
      p = preset_d();
      reduce = 3;
      break;
    case PresetId::kE:
      p = preset_e();
      reduce = 8;
      break;
  }
  if (scale == PresetScale::kReduced && reduce > 1) {
    p = shrink_fabric(p, reduce);
  }
  return p;
}

Region build_preset(PresetId id, PresetScale scale) {
  return build_region(preset_params(id, scale));
}

FlatParams flat_params(PresetId id, PresetScale scale) {
  FlatParams p;
  // Seeds differ per preset so the A..E ladder samples different graphs.
  p.seed = static_cast<std::uint64_t>(id) + 1;
  switch (id) {
    case PresetId::kA:
      p.switches = 16;
      p.degree = 4;
      p.extra_links = 2;
      break;
    case PresetId::kB:
      p.switches = 32;
      p.degree = 4;
      p.extra_links = 3;
      break;
    case PresetId::kC:
      p.switches = 64;
      p.degree = 5;
      p.extra_links = 4;
      // Span-limited chords: the high-diameter point of the ladder.
      p.max_chord_span = 16;
      break;
    case PresetId::kD:
      p.switches = 128;
      p.degree = 6;
      p.extra_links = 6;
      break;
    case PresetId::kE:
      p.switches = 256;
      p.degree = 6;
      p.extra_links = 8;
      break;
  }
  if (scale == PresetScale::kReduced) {
    p.switches = std::max(12, p.switches / 4);
    if (p.max_chord_span > 0) {
      p.max_chord_span = std::max(2, p.max_chord_span / 4);
    }
  }
  return p;
}

ReconfParams reconf_params(PresetId id, PresetScale scale) {
  ReconfParams p;
  switch (id) {
    case PresetId::kA:
      p.switches = 12;
      p.v1_strides = {1, 2};
      p.v2_strides = {1, 3};
      break;
    case PresetId::kB:
      p.switches = 24;
      p.v1_strides = {1, 2};
      p.v2_strides = {1, 3};
      break;
    case PresetId::kC:
      p.switches = 48;
      p.v1_strides = {1, 2, 5};
      p.v2_strides = {1, 3, 7};
      break;
    case PresetId::kD:
      p.switches = 96;
      p.v1_strides = {1, 2, 5};
      p.v2_strides = {1, 3, 7};
      break;
    case PresetId::kE:
      p.switches = 192;
      p.v1_strides = {1, 2, 5, 11};
      p.v2_strides = {1, 3, 7, 13};
      break;
  }
  if (scale == PresetScale::kReduced) {
    p.switches = std::max(10, p.switches / 4);
    // Keep every stride meaningful on the smaller ring.
    for (int& s : p.v1_strides) s = std::min(s, p.switches / 2);
    for (int& s : p.v2_strides) s = std::min(s, p.switches / 2);
  }
  return p;
}

Region build_family_preset(TopologyFamily family, PresetId id,
                           PresetScale scale) {
  switch (family) {
    case TopologyFamily::kClos: return build_preset(id, scale);
    case TopologyFamily::kFlat: return build_flat(flat_params(id, scale));
    case TopologyFamily::kReconf:
      return build_reconf(reconf_params(id, scale));
  }
  throw std::invalid_argument("build_family_preset: unknown family");
}

}  // namespace klotski::topo
