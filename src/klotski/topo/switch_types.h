// Switch roles, hardware generations, and element life-cycle states for the
// Meta-style DCN model described in the paper (§2.1).
//
// Roles, bottom-up:
//   RSW  - rack switch (top-of-rack)
//   FSW  - fabric switch (pod level)
//   SSW  - spine switch (plane level)
//   FADU - fabric-aggregate downlink unit (HGRID, faces a fabric/DC)
//   FAUU - fabric-aggregate uplink unit (HGRID, faces the backbone side)
//   MA   - metro aggregation (DMAG layer, added by the DMAG migration)
//   EB   - backbone border router
//   DR   - datacenter router at the DC/backbone boundary
//   EBB  - express backbone (WAN core)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace klotski::topo {

enum class SwitchRole : std::uint8_t {
  kRsw,
  kFsw,
  kSsw,
  kFadu,
  kFauu,
  kMa,
  kEb,
  kDr,
  kEbb,
};

inline constexpr int kNumSwitchRoles = 9;

/// Hardware generation of a switch (multiple generations coexist, §2.2).
enum class Generation : std::uint8_t { kV1, kV2 };

/// Life-cycle state of a switch or circuit.
///
///   kActive  - installed and carrying traffic
///   kDrained - installed (occupies ports / space / power) but carries no
///              traffic
///   kAbsent  - not installed: either staged for a future migration step or
///              already decommissioned; occupies nothing
enum class ElementState : std::uint8_t { kActive, kDrained, kAbsent };

std::string_view to_string(SwitchRole role);
std::string_view to_string(Generation gen);
std::string_view to_string(ElementState state);

/// Parses the strings produced by to_string; throws std::invalid_argument.
SwitchRole switch_role_from_string(std::string_view text);
Generation generation_from_string(std::string_view text);
ElementState element_state_from_string(std::string_view text);

using SwitchId = std::int32_t;
using CircuitId = std::int32_t;
inline constexpr SwitchId kInvalidSwitch = -1;
inline constexpr CircuitId kInvalidCircuit = -1;

}  // namespace klotski::topo
