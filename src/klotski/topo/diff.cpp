#include "klotski/topo/diff.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "klotski/util/string_util.h"

namespace klotski::topo {

namespace {

/// Classifies a state transition; returns false when nothing changed
/// meaningfully (including active <-> active etc.).
bool classify(ElementState before, ElementState after,
              ElementChange* change) {
  if (before == after) return false;
  const bool was_present = before != ElementState::kAbsent;
  const bool is_present = after != ElementState::kAbsent;
  if (!was_present && is_present) {
    *change = ElementChange::kInstalled;
  } else if (was_present && !is_present) {
    *change = ElementChange::kRemoved;
  } else if (before == ElementState::kDrained &&
             after == ElementState::kActive) {
    *change = ElementChange::kActivated;
  } else {
    *change = ElementChange::kDrained;
  }
  return true;
}

/// Capacity carried by a circuit under a given snapshot.
double carried(const Topology& topo, const TopologyState& state,
               CircuitId id) {
  const Circuit& c = topo.circuit(id);
  const bool active =
      state.circuit_states[static_cast<std::size_t>(id)] ==
          ElementState::kActive &&
      state.switch_states[static_cast<std::size_t>(c.a)] ==
          ElementState::kActive &&
      state.switch_states[static_cast<std::size_t>(c.b)] ==
          ElementState::kActive;
  return active ? c.capacity_tbps : 0.0;
}

}  // namespace

std::string to_string(ElementChange change) {
  switch (change) {
    case ElementChange::kInstalled: return "installed";
    case ElementChange::kRemoved: return "removed";
    case ElementChange::kActivated: return "activated";
    case ElementChange::kDrained: return "drained";
  }
  return "?";
}

std::size_t StateDiff::count_switches(ElementChange change) const {
  std::size_t n = 0;
  for (const SwitchDelta& delta : switches) n += delta.change == change;
  return n;
}

std::size_t StateDiff::count_circuits(ElementChange change) const {
  std::size_t n = 0;
  for (const CircuitDelta& delta : circuits) n += delta.change == change;
  return n;
}

StateDiff diff_states(const Topology& topo, const TopologyState& before,
                      const TopologyState& after) {
  if (before.switch_states.size() != topo.num_switches() ||
      after.switch_states.size() != topo.num_switches() ||
      before.circuit_states.size() != topo.num_circuits() ||
      after.circuit_states.size() != topo.num_circuits()) {
    throw std::invalid_argument(
        "diff_states: snapshots do not match the topology shape");
  }

  StateDiff diff;
  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    ElementChange change;
    if (classify(before.switch_states[i], after.switch_states[i], &change)) {
      diff.switches.push_back(
          SwitchDelta{static_cast<SwitchId>(i), change});
    }
  }
  for (std::size_t i = 0; i < topo.num_circuits(); ++i) {
    ElementChange change;
    if (classify(before.circuit_states[i], after.circuit_states[i],
                 &change)) {
      diff.circuits.push_back(
          CircuitDelta{static_cast<CircuitId>(i), change});
    }
    diff.capacity_delta_tbps +=
        carried(topo, after, static_cast<CircuitId>(i)) -
        carried(topo, before, static_cast<CircuitId>(i));
  }
  return diff;
}

std::string diff_to_text(const Topology& topo, const StateDiff& diff) {
  // Aggregate by (role, change).
  std::map<std::pair<std::string, std::string>, int> switch_counts;
  for (const SwitchDelta& delta : diff.switches) {
    const Switch& s = topo.sw(delta.id);
    ++switch_counts[{std::string(to_string(s.role)) + "/" +
                         std::string(to_string(s.gen)),
                     std::string(to_string(delta.change))}];
  }
  std::map<std::string, int> circuit_counts;
  for (const CircuitDelta& delta : diff.circuits) {
    ++circuit_counts[std::string(to_string(delta.change))];
  }

  std::ostringstream os;
  if (diff.empty()) {
    os << "(no changes)\n";
    return os.str();
  }
  for (const auto& [key, count] : switch_counts) {
    os << "  " << key.second << " " << count << " " << key.first
       << " switch(es)\n";
  }
  for (const auto& [change, count] : circuit_counts) {
    os << "  " << change << " " << count << " circuit(s)\n";
  }
  os << "  capacity delta: "
     << util::format_double(diff.capacity_delta_tbps, 2) << " Tbps\n";
  return os.str();
}

}  // namespace klotski::topo
