#include "klotski/topo/families.h"

#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "klotski/util/rng.h"

namespace klotski::topo {

std::string to_string(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kClos: return "clos";
    case TopologyFamily::kFlat: return "flat";
    case TopologyFamily::kReconf: return "reconf";
  }
  return "?";
}

TopologyFamily family_from_string(const std::string& text) {
  if (text == "clos") return TopologyFamily::kClos;
  if (text == "flat") return TopologyFamily::kFlat;
  if (text == "reconf") return TopologyFamily::kReconf;
  throw std::invalid_argument("unknown topology family: " + text);
}

std::vector<TopologyFamily> all_families() {
  return {TopologyFamily::kClos, TopologyFamily::kFlat,
          TopologyFamily::kReconf};
}

namespace {

[[noreturn]] void fail(const std::string& builder, const std::string& what) {
  throw std::invalid_argument(builder + ": " + what);
}

/// Assigns max_ports = initial occupancy + slack, the same post-wiring rule
/// build_region applies; tighten_port_budgets re-tightens once a migration
/// also knows the target state.
void size_ports(Topology& topo, int slack) {
  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    const auto id = static_cast<SwitchId>(i);
    Switch& s = topo.sw(id);
    s.max_ports = topo.occupied_ports(id) + slack;
    if (s.max_ports <= 0) s.max_ports = 1;
  }
}

int ring_distance(int a, int b, int n) {
  const int d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}

}  // namespace

Region build_flat(const FlatParams& p) {
  auto require = [](bool ok, const char* message) {
    if (!ok) fail("build_flat", message);
  };
  require(p.switches >= 4, "switches must be >= 4");
  require(p.switches <= 10000, "switches must be <= 10000");
  require(p.degree >= 2,
          "degree must be >= 2 (the connectivity ring itself); "
          "zero-degree flat graphs are disconnected");
  require(p.degree < p.switches, "degree must be < switches");
  require(p.extra_links >= 0, "extra_links must be >= 0");
  require(p.max_chord_span == 0 ||
              (p.max_chord_span >= 2 && p.max_chord_span <= p.switches / 2),
          "max_chord_span must be 0 (unrestricted) or in [2, switches/2]");
  require(p.cap_tbps > 0.0, "cap_tbps must be > 0");
  require(p.port_slack >= 0, "port_slack must be >= 0");

  Region region;
  region.family = TopologyFamily::kFlat;
  region.params.dcs = 1;
  region.params.port_slack_fabric = p.port_slack;
  Topology& topo = region.topo;
  const int n = p.switches;

  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  for (int i = 0; i < n; ++i) {
    Location loc;
    loc.pod = static_cast<std::int16_t>(i);  // ring position, for debugging
    region.mesh_nodes.push_back(
        topo.add_switch(SwitchRole::kFsw, Generation::kV1, loc, kUnsizedPorts,
                        ElementState::kActive, "f" + std::to_string(i)));
  }

  // Edge de-duplication: chords never repeat an existing pair, which keeps
  // the degree distribution spread out instead of stacking parallel links.
  std::unordered_set<std::int64_t> edges;
  auto edge_key = [n](int a, int b) {
    return static_cast<std::int64_t>(std::min(a, b)) * n + std::max(a, b);
  };
  auto add_edge = [&](int a, int b) {
    edges.insert(edge_key(a, b));
    topo.add_circuit(region.mesh_nodes[static_cast<std::size_t>(a)],
                     region.mesh_nodes[static_cast<std::size_t>(b)],
                     p.cap_tbps, ElementState::kActive);
  };

  // Hamiltonian ring: connectivity holds no matter where the chords land.
  for (int i = 0; i < n; ++i) add_edge(i, (i + 1) % n);

  util::Rng rng(p.seed);
  const int span = p.max_chord_span > 0 ? p.max_chord_span : n / 2;
  auto admissible = [&](int a, int b) {
    return a != b && ring_distance(a, b, n) >= 2 &&
           ring_distance(a, b, n) <= span && edges.count(edge_key(a, b)) == 0;
  };

  // Chord matchings: each round visits the switches in a fresh seeded order
  // and pairs every still-unmatched switch with a random admissible partner
  // (index offset within the span). A bounded number of probes per switch
  // means some switches stay unmatched in some rounds — deliberate degree
  // irregularity rather than a perfectly regular graph.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int round = 0; round < p.degree - 2; ++round) {
    rng.shuffle(order);
    std::vector<char> matched(static_cast<std::size_t>(n), 0);
    for (const int i : order) {
      if (matched[static_cast<std::size_t>(i)]) continue;
      for (int probe = 0; probe < 8; ++probe) {
        const int offset = static_cast<int>(rng.uniform_int(2, span));
        const int j =
            rng.chance(0.5) ? (i + offset) % n : (i - offset + n) % n;
        if (matched[static_cast<std::size_t>(j)] || !admissible(i, j)) {
          continue;
        }
        add_edge(i, j);
        matched[static_cast<std::size_t>(i)] = 1;
        matched[static_cast<std::size_t>(j)] = 1;
        break;
      }
    }
  }

  // Extra links on top of the matchings: pure degree spread.
  for (int k = 0; k < p.extra_links; ++k) {
    for (int probe = 0; probe < 16; ++probe) {
      const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      const int offset = static_cast<int>(rng.uniform_int(2, span));
      const int b = rng.chance(0.5) ? (a + offset) % n : (a - offset + n) % n;
      if (!admissible(a, b)) continue;
      add_edge(a, b);
      break;
    }
  }

  size_ports(topo, p.port_slack);
  region.fsws.assign(1, region.mesh_nodes);
  region.rsws.resize(1);
  region.ssws.resize(1);
  return region;
}

Region build_reconf(const ReconfParams& p) {
  auto require = [](bool ok, const std::string& message) {
    if (!ok) fail("build_reconf", message);
  };
  require(p.switches >= 4, "switches must be >= 4");
  require(p.switches <= 10000, "switches must be <= 10000");
  require(p.cap_tbps > 0.0, "cap_tbps must be > 0");
  require(p.port_slack >= 0, "port_slack must be >= 0");

  const int n = p.switches;
  auto validate_pattern = [&](const std::vector<int>& strides,
                              const char* which) {
    require(!strides.empty(),
            std::string(which) + " stride pattern must not be empty");
    std::unordered_set<int> seen;
    int g = n;
    for (const int s : strides) {
      require(s >= 1 && s <= n / 2,
              std::string(which) + " strides must be in [1, switches/2]");
      require(seen.insert(s).second,
              std::string(which) + " stride pattern has a duplicate stride");
      g = std::gcd(g, s);
    }
    // A circulant graph is connected iff gcd(n, strides...) == 1; a seed
    // like {2} on an even ring splits into disjoint cycles.
    require(g == 1, std::string(which) + " stride pattern {gcd " +
                        std::to_string(g) +
                        " with the ring size} leaves the mesh disconnected");
  };
  validate_pattern(p.v1_strides, "v1");
  validate_pattern(p.v2_strides, "v2");

  Region region;
  region.family = TopologyFamily::kReconf;
  region.params.dcs = 1;
  region.params.port_slack_fabric = p.port_slack;
  Topology& topo = region.topo;

  constexpr std::int32_t kUnsizedPorts = 1 << 20;
  for (int i = 0; i < n; ++i) {
    Location loc;
    loc.pod = static_cast<std::int16_t>(i);
    region.mesh_nodes.push_back(
        topo.add_switch(SwitchRole::kFsw, Generation::kV1, loc, kUnsizedPorts,
                        ElementState::kActive, "n" + std::to_string(i)));
  }

  const std::unordered_set<int> v1(p.v1_strides.begin(), p.v1_strides.end());
  const std::unordered_set<int> v2(p.v2_strides.begin(), p.v2_strides.end());
  std::vector<int> strides;
  for (int s = 1; s <= n / 2; ++s) {
    if (v1.count(s) != 0 || v2.count(s) != 0) strides.push_back(s);
  }

  for (const int s : strides) {
    MeshStrideCircuits group;
    group.stride = s;
    group.shared = v1.count(s) != 0 && v2.count(s) != 0;
    group.gen = v1.count(s) != 0 ? Generation::kV1 : Generation::kV2;
    const ElementState state = v1.count(s) != 0 ? ElementState::kActive
                                                : ElementState::kAbsent;
    // Stride n/2 on an even ring meets itself halfway around: emit each
    // circuit once.
    const int count = (n % 2 == 0 && s == n / 2) ? n / 2 : n;
    for (int i = 0; i < count; ++i) {
      group.circuits.push_back(topo.add_circuit(
          region.mesh_nodes[static_cast<std::size_t>(i)],
          region.mesh_nodes[static_cast<std::size_t>((i + s) % n)], p.cap_tbps,
          state));
    }
    region.mesh_strides.push_back(std::move(group));
  }

  size_ports(topo, p.port_slack);
  region.fsws.assign(1, region.mesh_nodes);
  region.rsws.resize(1);
  region.ssws.resize(1);
  return region;
}

}  // namespace klotski::topo
