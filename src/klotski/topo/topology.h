// The DCN graph: switches (nodes) and circuits (edges) with life-cycle
// states, plus the location attributes (dc / pod / plane / grid) that the
// migration layer uses to form symmetry and operation blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "klotski/topo/switch_types.h"

namespace klotski::topo {

/// Location attributes; -1 means "not applicable" for the role.
struct Location {
  std::int16_t dc = -1;     // building within the region
  std::int16_t pod = -1;    // fabric pod (RSW/FSW)
  std::int16_t plane = -1;  // spine plane (FSW/SSW)
  std::int16_t grid = -1;   // HGRID grid (FADU/FAUU) or MA group

  friend bool operator==(const Location&, const Location&) = default;
};

struct Switch {
  SwitchId id = kInvalidSwitch;
  SwitchRole role = SwitchRole::kRsw;
  Generation gen = Generation::kV1;
  Location loc;
  std::int32_t max_ports = 0;  // hard physical port limit (Eq. 6)
  ElementState state = ElementState::kActive;
  std::string name;  // hierarchical, e.g. "dc0/pod3/fsw2"

  bool present() const { return state != ElementState::kAbsent; }
  bool active() const { return state == ElementState::kActive; }
};

struct Circuit {
  CircuitId id = kInvalidCircuit;
  SwitchId a = kInvalidSwitch;
  SwitchId b = kInvalidSwitch;
  double capacity_tbps = 0.0;  // per direction (full duplex)
  ElementState state = ElementState::kActive;

  bool present() const { return state != ElementState::kAbsent; }

  SwitchId other(SwitchId s) const { return s == a ? b : a; }
};

/// Mutable DCN topology.
///
/// Construction is append-only (ids are dense indexes); migrations only flip
/// ElementStates, so a state snapshot (`TopologyState`) plus the immutable
/// structure fully describes any intermediate topology.
///
/// State changes that go through set_switch_state() / set_circuit_state()
/// (or TopologyState::restore) bump a monotonically increasing version
/// counter and are recorded in a bounded change journal. Incremental
/// consumers (the ECMP router's liveness bitmap, per-group load caches,
/// checker memos) key their caches on the version and replay the journal
/// instead of rescanning the whole graph. Writing `sw(id).state` directly
/// bypasses the counter and is only safe before any such consumer exists
/// (construction-time setup); call bump_state_version() after out-of-band
/// edits (e.g. capacity or port-budget tweaks) to flush downstream caches.
class Topology {
 public:
  /// Adds a switch; returns its id.
  SwitchId add_switch(SwitchRole role, Generation gen, Location loc,
                      std::int32_t max_ports, ElementState state,
                      std::string name);

  /// Adds a circuit between two existing switches; returns its id.
  CircuitId add_circuit(SwitchId a, SwitchId b, double capacity_tbps,
                        ElementState state);

  std::size_t num_switches() const { return switches_.size(); }
  std::size_t num_circuits() const { return circuits_.size(); }

  const Switch& sw(SwitchId id) const { return switches_[id]; }
  Switch& sw(SwitchId id) { return switches_[id]; }
  const Circuit& circuit(CircuitId id) const { return circuits_[id]; }
  Circuit& circuit(CircuitId id) { return circuits_[id]; }

  /// Versioned state mutators: no-ops when the state is unchanged, otherwise
  /// bump state_version() and record the element in the change journal.
  void set_switch_state(SwitchId id, ElementState state);
  void set_circuit_state(CircuitId id, ElementState state);

  /// Monotonically increasing counter of element-state changes. Two reads
  /// returning the same value guarantee the element states are unchanged in
  /// between (provided all writers use the versioned mutators).
  std::uint64_t state_version() const { return state_version_; }

  /// Forces a version bump with no journal entry (journal coverage restarts
  /// here). Use after out-of-band mutations — direct `.state` writes,
  /// capacity or port-budget edits — to invalidate version-keyed caches.
  void bump_state_version();

  /// One journal entry: a switch id (>= 0) or a bitwise-complemented circuit
  /// id (< 0; decode with ~entry). Entries are in change order and may
  /// repeat an element.
  using StateChange = std::int32_t;
  static SwitchId change_switch(StateChange e) { return e; }
  static CircuitId change_circuit(StateChange e) { return ~e; }
  static bool change_is_switch(StateChange e) { return e >= 0; }

  /// Appends the journal entries for versions (since, state_version()] to
  /// `out` and returns true, or returns false when `since` predates the
  /// journal's coverage (caller must fall back to a full rescan).
  bool changes_since(std::uint64_t since, std::vector<StateChange>& out) const;

  const std::vector<Switch>& switches() const { return switches_; }
  const std::vector<Circuit>& circuits() const { return circuits_; }

  /// Circuits incident to a switch (all states).
  const std::vector<CircuitId>& incident(SwitchId id) const {
    return incident_[id];
  }

  /// True iff the circuit carries traffic: circuit active and both endpoint
  /// switches active.
  bool circuit_carries_traffic(CircuitId id) const;

  /// Packs circuit_carries_traffic for every circuit into 64-bit words
  /// (bit c of out[c / 64] = circuit c carries traffic) in one sequential
  /// pass. `out` is resized to ceil(num_circuits / 64); trailing bits of the
  /// last word are zero. This is the full-rebuild path of word-packed
  /// liveness consumers (the ECMP router); incremental consumers replay the
  /// change journal instead.
  void liveness_words(std::vector<std::uint64_t>& out) const;

  /// Number of ports occupied on a switch = incident circuits that are
  /// physically present (active or drained).
  int occupied_ports(SwitchId id) const;

  /// Switch ids matching a predicate-free filter (role, optional state).
  std::vector<SwitchId> switches_with_role(SwitchRole role) const;

  /// Aggregate counters.
  std::size_t count_present_switches() const;
  std::size_t count_present_circuits() const;
  std::size_t count_active_circuits() const;

  /// Sum of capacity over circuits currently carrying traffic (Tbps,
  /// one direction).
  double active_capacity_tbps() const;

  /// Looks up a switch by its unique name; returns kInvalidSwitch if absent.
  SwitchId find_switch(const std::string& name) const;

  /// Validates structural invariants (endpoint ids in range, port limits not
  /// exceeded by present circuits, unique names). Returns an error message
  /// or empty string when valid.
  std::string validate() const;

 private:
  void journal_push(StateChange entry);

  std::vector<Switch> switches_;
  std::vector<Circuit> circuits_;
  std::vector<std::vector<CircuitId>> incident_;

  // Change journal: a ring holding the entries for versions
  // (journal_floor_, state_version_]. Bounded so long searches cannot grow
  // it; consumers further behind than the floor rescan from scratch.
  static constexpr std::size_t kJournalCapacity = 8192;
  std::uint64_t state_version_ = 0;
  std::uint64_t journal_floor_ = 0;
  std::vector<StateChange> journal_;
};

/// A snapshot of all element states; restoring one onto the owning topology
/// is O(|S|+|C|). Used by the state evaluator to re-materialize intermediate
/// topologies from the compact representation.
struct TopologyState {
  std::vector<ElementState> switch_states;
  std::vector<ElementState> circuit_states;

  static TopologyState capture(const Topology& topo);
  void restore(Topology& topo) const;

  /// Order-sensitive 64-bit digest of all element states. Used by the chaos
  /// engine's trajectory logs: two topologies with equal structure and equal
  /// signatures went through the same intermediate state.
  std::uint64_t signature() const;

  friend bool operator==(const TopologyState&, const TopologyState&) = default;
};

}  // namespace klotski::topo
