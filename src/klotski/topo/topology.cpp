#include "klotski/topo/topology.h"

#include <stdexcept>
#include <unordered_map>

#include "klotski/util/hash.h"

namespace klotski::topo {

std::string_view to_string(SwitchRole role) {
  switch (role) {
    case SwitchRole::kRsw: return "RSW";
    case SwitchRole::kFsw: return "FSW";
    case SwitchRole::kSsw: return "SSW";
    case SwitchRole::kFadu: return "FADU";
    case SwitchRole::kFauu: return "FAUU";
    case SwitchRole::kMa: return "MA";
    case SwitchRole::kEb: return "EB";
    case SwitchRole::kDr: return "DR";
    case SwitchRole::kEbb: return "EBB";
  }
  return "?";
}

std::string_view to_string(Generation gen) {
  return gen == Generation::kV1 ? "V1" : "V2";
}

std::string_view to_string(ElementState state) {
  switch (state) {
    case ElementState::kActive: return "active";
    case ElementState::kDrained: return "drained";
    case ElementState::kAbsent: return "absent";
  }
  return "?";
}

SwitchRole switch_role_from_string(std::string_view text) {
  for (int r = 0; r < kNumSwitchRoles; ++r) {
    const auto role = static_cast<SwitchRole>(r);
    if (to_string(role) == text) return role;
  }
  throw std::invalid_argument("unknown switch role: " + std::string(text));
}

Generation generation_from_string(std::string_view text) {
  if (text == "V1") return Generation::kV1;
  if (text == "V2") return Generation::kV2;
  throw std::invalid_argument("unknown generation: " + std::string(text));
}

ElementState element_state_from_string(std::string_view text) {
  if (text == "active") return ElementState::kActive;
  if (text == "drained") return ElementState::kDrained;
  if (text == "absent") return ElementState::kAbsent;
  throw std::invalid_argument("unknown element state: " + std::string(text));
}

SwitchId Topology::add_switch(SwitchRole role, Generation gen, Location loc,
                              std::int32_t max_ports, ElementState state,
                              std::string name) {
  const auto id = static_cast<SwitchId>(switches_.size());
  switches_.push_back(Switch{id, role, gen, loc, max_ports, state,
                             std::move(name)});
  incident_.emplace_back();
  // Structural growth invalidates version-keyed caches wholesale: sizes
  // change, so incremental journal replay cannot describe it.
  bump_state_version();
  return id;
}

CircuitId Topology::add_circuit(SwitchId a, SwitchId b, double capacity_tbps,
                                ElementState state) {
  if (a < 0 || b < 0 || a >= static_cast<SwitchId>(switches_.size()) ||
      b >= static_cast<SwitchId>(switches_.size())) {
    throw std::out_of_range("add_circuit: endpoint id out of range");
  }
  if (a == b) {
    throw std::invalid_argument("add_circuit: self loops are not allowed");
  }
  const auto id = static_cast<CircuitId>(circuits_.size());
  circuits_.push_back(Circuit{id, a, b, capacity_tbps, state});
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  bump_state_version();
  return id;
}

void Topology::journal_push(StateChange entry) {
  ++state_version_;
  if (journal_.empty()) journal_.resize(kJournalCapacity);
  // Slot for version v is (v - 1) % capacity, independent of any floor
  // resets, so readers can index purely by version.
  journal_[(state_version_ - 1) % kJournalCapacity] = entry;
  if (state_version_ - journal_floor_ > kJournalCapacity) {
    journal_floor_ = state_version_ - kJournalCapacity;
  }
}

void Topology::set_switch_state(SwitchId id, ElementState state) {
  Switch& s = switches_[id];
  if (s.state == state) return;
  s.state = state;
  journal_push(id);
}

void Topology::set_circuit_state(CircuitId id, ElementState state) {
  Circuit& c = circuits_[id];
  if (c.state == state) return;
  c.state = state;
  journal_push(~id);
}

void Topology::bump_state_version() {
  ++state_version_;
  journal_floor_ = state_version_;
}

bool Topology::changes_since(std::uint64_t since,
                             std::vector<StateChange>& out) const {
  if (since > state_version_) return false;
  if (since < journal_floor_) return false;
  for (std::uint64_t v = since + 1; v <= state_version_; ++v) {
    out.push_back(journal_[(v - 1) % kJournalCapacity]);
  }
  return true;
}

bool Topology::circuit_carries_traffic(CircuitId id) const {
  const Circuit& c = circuits_[id];
  return c.state == ElementState::kActive && switches_[c.a].active() &&
         switches_[c.b].active();
}

void Topology::liveness_words(std::vector<std::uint64_t>& out) const {
  out.assign((circuits_.size() + 63) / 64, 0);
  for (const Circuit& c : circuits_) {
    if (c.state == ElementState::kActive && switches_[c.a].active() &&
        switches_[c.b].active()) {
      out[static_cast<std::size_t>(c.id) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(c.id) & 63);
    }
  }
}

int Topology::occupied_ports(SwitchId id) const {
  int count = 0;
  for (const CircuitId cid : incident_[id]) {
    const Circuit& c = circuits_[cid];
    // A present circuit occupies a port on both endpoints, but only if the
    // far-end switch is installed (staged circuits to absent switches have
    // not been wired yet).
    if (c.present() && switches_[c.other(id)].present()) ++count;
  }
  return count;
}

std::vector<SwitchId> Topology::switches_with_role(SwitchRole role) const {
  std::vector<SwitchId> out;
  for (const Switch& s : switches_) {
    if (s.role == role) out.push_back(s.id);
  }
  return out;
}

std::size_t Topology::count_present_switches() const {
  std::size_t n = 0;
  for (const Switch& s : switches_) n += s.present() ? 1 : 0;
  return n;
}

std::size_t Topology::count_present_circuits() const {
  std::size_t n = 0;
  for (const Circuit& c : circuits_) n += c.present() ? 1 : 0;
  return n;
}

std::size_t Topology::count_active_circuits() const {
  std::size_t n = 0;
  for (const Circuit& c : circuits_) {
    n += circuit_carries_traffic(c.id) ? 1 : 0;
  }
  return n;
}

double Topology::active_capacity_tbps() const {
  double total = 0.0;
  for (const Circuit& c : circuits_) {
    if (circuit_carries_traffic(c.id)) total += c.capacity_tbps;
  }
  return total;
}

SwitchId Topology::find_switch(const std::string& name) const {
  for (const Switch& s : switches_) {
    if (s.name == name) return s.id;
  }
  return kInvalidSwitch;
}

std::string Topology::validate() const {
  std::unordered_map<std::string, int> names;
  for (const Switch& s : switches_) {
    if (s.max_ports <= 0) {
      return "switch " + s.name + " has non-positive max_ports";
    }
    if (++names[s.name] > 1) {
      return "duplicate switch name: " + s.name;
    }
  }
  for (const Circuit& c : circuits_) {
    if (c.a < 0 || c.b < 0 ||
        c.a >= static_cast<SwitchId>(switches_.size()) ||
        c.b >= static_cast<SwitchId>(switches_.size())) {
      return "circuit " + std::to_string(c.id) + " has invalid endpoints";
    }
    if (c.capacity_tbps <= 0.0) {
      return "circuit " + std::to_string(c.id) + " has non-positive capacity";
    }
  }
  for (const Switch& s : switches_) {
    if (!s.present()) continue;
    if (occupied_ports(s.id) > s.max_ports) {
      return "switch " + s.name + " exceeds its port budget: " +
             std::to_string(occupied_ports(s.id)) + " > " +
             std::to_string(s.max_ports);
    }
  }
  return "";
}

TopologyState TopologyState::capture(const Topology& topo) {
  TopologyState state;
  state.switch_states.reserve(topo.num_switches());
  for (const Switch& s : topo.switches()) state.switch_states.push_back(s.state);
  state.circuit_states.reserve(topo.num_circuits());
  for (const Circuit& c : topo.circuits()) {
    state.circuit_states.push_back(c.state);
  }
  return state;
}

void TopologyState::restore(Topology& topo) const {
  if (switch_states.size() != topo.num_switches() ||
      circuit_states.size() != topo.num_circuits()) {
    throw std::invalid_argument(
        "TopologyState::restore: snapshot does not match topology shape");
  }
  // Versioned setters so restores participate in incremental cache
  // invalidation; a restore that changes nothing leaves the version alone.
  for (std::size_t i = 0; i < switch_states.size(); ++i) {
    topo.set_switch_state(static_cast<SwitchId>(i), switch_states[i]);
  }
  for (std::size_t i = 0; i < circuit_states.size(); ++i) {
    topo.set_circuit_state(static_cast<CircuitId>(i), circuit_states[i]);
  }
}

std::uint64_t TopologyState::signature() const {
  std::uint64_t h = util::hash_combine(0x1234'5678'9ABC'DEF0ULL,
                                       switch_states.size());
  for (const ElementState s : switch_states) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(s));
  }
  h = util::hash_combine(h, circuit_states.size());
  for (const ElementState s : circuit_states) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

}  // namespace klotski::topo
