// Topology state diff: what changes between two element-state snapshots of
// the same topology (e.g. the original and target states of a migration, or
// two consecutive phases of a plan).
//
// EDP-Lite receives original/target NPD topologies; the diff is the
// human-facing summary of what a migration actually does — how many
// switches and circuits of each role are installed, drained, or removed,
// and how much traffic-carrying capacity moves. The bench harness behind
// Table 1 and the audit tooling both build on it.
#pragma once

#include <string>
#include <vector>

#include "klotski/topo/topology.h"

namespace klotski::topo {

enum class ElementChange : std::uint8_t {
  kInstalled,   // absent -> present
  kRemoved,     // present -> absent
  kActivated,   // drained -> active
  kDrained,     // active -> drained
};

std::string to_string(ElementChange change);

struct SwitchDelta {
  SwitchId id = kInvalidSwitch;
  ElementChange change = ElementChange::kInstalled;
};

struct CircuitDelta {
  CircuitId id = kInvalidCircuit;
  ElementChange change = ElementChange::kInstalled;
};

struct StateDiff {
  std::vector<SwitchDelta> switches;
  std::vector<CircuitDelta> circuits;
  /// Change in traffic-carrying capacity (after minus before), Tbps.
  double capacity_delta_tbps = 0.0;

  bool empty() const { return switches.empty() && circuits.empty(); }

  /// Count of switch changes of one kind.
  std::size_t count_switches(ElementChange change) const;
  std::size_t count_circuits(ElementChange change) const;
};

/// Computes the diff from `before` to `after`. Both snapshots must match
/// the topology's shape (throws std::invalid_argument otherwise). The
/// topology's current element states are left untouched.
StateDiff diff_states(const Topology& topo, const TopologyState& before,
                      const TopologyState& after);

/// One-line-per-change human summary (role-aggregated counts).
std::string diff_to_text(const Topology& topo, const StateDiff& diff);

}  // namespace klotski::topo
