// The five production topology presets of Table 3 (A ... E), at two scales:
//
//  * kFull    - paper-scale shapes: A ~40 switches/~80 circuits up to
//               E ~10,000 switches/~100,000 circuits.
//  * kReduced - same layer structure and the same qualitative behaviour, but
//               sized so that the whole bench suite (including the slow
//               MRC / Janus baselines the paper capped at 24 h) completes in
//               minutes on a laptop.
//
// Presets only describe the *region*; the migration task (HGRID V1->V2,
// SSW forklift, DMAG) is applied on top by the task builders.
#pragma once

#include <string>
#include <vector>

#include "klotski/topo/builder.h"
#include "klotski/topo/families.h"

namespace klotski::topo {

enum class PresetId { kA, kB, kC, kD, kE };
enum class PresetScale { kReduced, kFull };

/// Stable display name: "A".."E".
std::string to_string(PresetId id);

/// All presets in ascending size order.
std::vector<PresetId> all_presets();

/// Region parameters for a preset at the given scale.
RegionParams preset_params(PresetId id, PresetScale scale);

/// Convenience: build the region directly.
Region build_preset(PresetId id, PresetScale scale);

/// Non-Clos family presets, sized A..E alongside the Clos scales (flat
/// switch counts track the preset's fabric size; reconf meshes stay small
/// enough that the rewire search is comparable to the Clos action counts).
FlatParams flat_params(PresetId id, PresetScale scale);
ReconfParams reconf_params(PresetId id, PresetScale scale);

/// Builds a region of any family at a preset size. Clos falls back to
/// build_preset.
Region build_family_preset(TopologyFamily family, PresetId id,
                           PresetScale scale);

}  // namespace klotski::topo
