// Non-Clos topology families (DESIGN.md §12).
//
// Two synthesizer families live beside the Clos presets:
//
//  * Flat (RNG-style, "Flat Datacenter Networks at Scale"): a seeded
//    random fabric of identical FSW-role switches — a Hamiltonian ring for
//    guaranteed connectivity plus random chord matchings up to the target
//    degree, with optional extra links (degree irregularity) and a chord
//    span limit (diameter knob). No hierarchy, no planes, no pods: the 1-WL
//    symmetry partition is near-trivial, which is what defeats
//    symmetry-only planners (§8).
//
//  * Reconf (Avin & Schmid-style reconfigurable mesh): a circulant graph
//    over a fixed switch ring whose wiring pattern is a set of strides.
//    The migration *rewires* the mesh — the V2 target has a different
//    stride set — so operation blocks add and remove circuits rather than
//    forklift switch layers. Target-only chords are staged absent at build
//    time; shared strides (always including the ring) are never operated.
//
// Both builders reuse topo::Region: every switch lands in fsws[0] /
// mesh_nodes, so role-driven machinery (fault scripts, port slack classes)
// works unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/topo/builder.h"

namespace klotski::topo {

/// Parameters of the flat random fabric.
struct FlatParams {
  int switches = 24;
  /// Target average degree: the ring contributes 2, each chord matching
  /// round roughly 1. Must be >= 2 (the ring itself); higher degree lowers
  /// the diameter (~log_(d-1) N for unrestricted chords).
  int degree = 4;
  /// Extra seeded random chords on top of the matchings; these create the
  /// degree irregularity that shrinks symmetry blocks.
  int extra_links = 2;
  /// When > 0, chords only connect switches within this ring distance: the
  /// diameter knob (span s keeps the diameter near N / (2s)).
  int max_chord_span = 0;
  double cap_tbps = 0.4;
  std::uint64_t seed = 1;
  /// Spare ports per switch beyond initial occupancy; gates how much V2
  /// hardware can onboard before V1 decommissions (§2.3).
  int port_slack = 2;
};

/// Parameters of the reconfigurable circulant mesh. The V1 pattern is the
/// built (active) wiring; the V2 pattern is staged absent so the rewire
/// migration can undrain it. Strides present in both patterns are shared
/// and never operated. Stride 1 (the ring) should normally be in both —
/// validation only requires each pattern to be connected on its own.
struct ReconfParams {
  int switches = 24;
  std::vector<int> v1_strides = {1, 2};
  std::vector<int> v2_strides = {1, 3};
  double cap_tbps = 0.4;
  /// Spare ports per switch; 0 forces strict remove-before-add ordering.
  int port_slack = 1;
};

/// Builds a flat region; throws std::invalid_argument on degenerate
/// parameters (zero/one-degree graphs, non-positive capacity, ...).
Region build_flat(const FlatParams& params);

/// Builds a reconf region; throws std::invalid_argument on degenerate
/// parameters or when either stride pattern yields a disconnected graph
/// (e.g. {2} on an even ring).
Region build_reconf(const ReconfParams& params);

}  // namespace klotski::topo
