#include "klotski/topo/builder.h"

#include <stdexcept>
#include <string>

namespace klotski::topo {

namespace {

std::string name_of(const std::string& prefix, int index) {
  return prefix + std::to_string(index);
}

void validate_params(const RegionParams& p) {
  auto require = [](bool ok, const char* message) {
    if (!ok) throw std::invalid_argument(std::string("build_region: ") + message);
  };
  require(p.dcs >= 1, "dcs must be >= 1");
  require(!p.fabrics.empty(), "at least one FabricParams entry is required");
  for (const FabricParams& f : p.fabrics) {
    require(f.pods >= 1, "pods must be >= 1");
    require(f.rsws_per_pod >= 1, "rsws_per_pod must be >= 1");
    require(f.planes >= 1, "planes must be >= 1");
    require(f.ssws_per_plane >= 1, "ssws_per_plane must be >= 1");
    require(f.rsw_fsw_links >= 1, "rsw_fsw_links must be >= 1");
  }
  require(p.grids >= 1, "grids must be >= 1");
  require(p.fadus_per_grid_per_dc >= 1, "fadus_per_grid_per_dc must be >= 1");
  require(p.fauus_per_grid >= 1, "fauus_per_grid must be >= 1");
  require(p.ebs >= 1, "ebs must be >= 1");
  require(p.drs >= 1, "drs must be >= 1");
  require(p.ebbs >= 1, "ebbs must be >= 1");
  // Degenerate hardware parameters produce regions that only fail deep
  // inside the demand checker ("no path" / zero-capacity layers); reject
  // them here with a nameable cause instead.
  require(p.cap_rsw_fsw > 0.0 && p.cap_fsw_ssw > 0.0 &&
              p.cap_ssw_fadu > 0.0 && p.cap_fadu_fauu > 0.0 &&
              p.cap_fauu_eb > 0.0 && p.cap_fauu_dr > 0.0 &&
              p.cap_eb_ebb > 0.0 && p.cap_dr_ebb > 0.0,
          "circuit capacities must all be > 0");
  require(p.port_slack_fabric >= 0 && p.port_slack_ssw >= 0 &&
              p.port_slack_agg >= 0 && p.port_slack_eb >= 0 &&
              p.port_slack_ebb >= 0,
          "port slacks must all be >= 0");
}

}  // namespace

const FabricParams& Region::fabric(int dc) const {
  const auto index = static_cast<std::size_t>(dc);
  if (index < params.fabrics.size()) return params.fabrics[index];
  return params.fabrics.back();
}

Region build_region(const RegionParams& params) {
  validate_params(params);

  Region region;
  region.params = params;
  Topology& topo = region.topo;

  // max_ports is assigned after wiring (initial occupancy + role slack), so
  // use a sentinel large value during construction.
  constexpr std::int32_t kUnsizedPorts = 1 << 20;

  // -------------------------------------------------------------------------
  // Fabric per DC: RSW / FSW / SSW.
  region.rsws.resize(params.dcs);
  region.fsws.resize(params.dcs);
  region.ssws.resize(params.dcs);

  for (int dc = 0; dc < params.dcs; ++dc) {
    const FabricParams& fab = region.fabric(dc);
    const std::string dc_prefix = "d" + std::to_string(dc) + "/";

    // Spine planes first so FSW wiring can look them up.
    region.ssws[dc].resize(fab.planes);
    for (int plane = 0; plane < fab.planes; ++plane) {
      for (int i = 0; i < fab.ssws_per_plane; ++i) {
        Location loc;
        loc.dc = static_cast<std::int16_t>(dc);
        loc.plane = static_cast<std::int16_t>(plane);
        const SwitchId id = topo.add_switch(
            SwitchRole::kSsw, Generation::kV1, loc, kUnsizedPorts,
            ElementState::kActive,
            dc_prefix + "pl" + std::to_string(plane) + "/ssw" +
                std::to_string(i));
        region.ssws[dc][plane].push_back(id);
      }
    }

    for (int pod = 0; pod < fab.pods; ++pod) {
      const std::string pod_prefix =
          dc_prefix + "p" + std::to_string(pod) + "/";

      // One FSW per plane in each pod.
      std::vector<SwitchId> pod_fsws;
      for (int plane = 0; plane < fab.planes; ++plane) {
        Location loc;
        loc.dc = static_cast<std::int16_t>(dc);
        loc.pod = static_cast<std::int16_t>(pod);
        loc.plane = static_cast<std::int16_t>(plane);
        const SwitchId id = topo.add_switch(
            SwitchRole::kFsw, Generation::kV1, loc, kUnsizedPorts,
            ElementState::kActive, pod_prefix + name_of("fsw", plane));
        pod_fsws.push_back(id);
        region.fsws[dc].push_back(id);

        // FSW <-> all SSWs of its plane.
        for (const SwitchId ssw : region.ssws[dc][plane]) {
          topo.add_circuit(id, ssw, params.cap_fsw_ssw,
                           ElementState::kActive);
        }
      }

      // RSWs: each connects to every FSW of its pod.
      for (int r = 0; r < fab.rsws_per_pod; ++r) {
        Location loc;
        loc.dc = static_cast<std::int16_t>(dc);
        loc.pod = static_cast<std::int16_t>(pod);
        const SwitchId id = topo.add_switch(
            SwitchRole::kRsw, Generation::kV1, loc, kUnsizedPorts,
            ElementState::kActive, pod_prefix + name_of("rsw", r));
        region.rsws[dc].push_back(id);
        for (const SwitchId fsw : pod_fsws) {
          for (int link = 0; link < fab.rsw_fsw_links; ++link) {
            topo.add_circuit(id, fsw, params.cap_rsw_fsw,
                             ElementState::kActive);
          }
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // HGRID layer: grids of FADUs (per DC) and FAUUs.
  region.fadus.resize(params.grids);
  region.fauus.resize(params.grids);

  for (int grid = 0; grid < params.grids; ++grid) {
    const std::string grid_prefix = "g" + std::to_string(grid) + "/";
    region.fadus[grid].resize(params.dcs);

    for (int dc = 0; dc < params.dcs; ++dc) {
      const FabricParams& fab = region.fabric(dc);
      for (int k = 0; k < params.fadus_per_grid_per_dc; ++k) {
        Location loc;
        loc.dc = static_cast<std::int16_t>(dc);
        loc.grid = static_cast<std::int16_t>(grid);
        const SwitchId fadu = topo.add_switch(
            SwitchRole::kFadu, params.hgrid_gen, loc, kUnsizedPorts,
            ElementState::kActive,
            grid_prefix + "d" + std::to_string(dc) + "/" + name_of("fadu", k));
        region.fadus[grid][dc].push_back(fadu);

        // SSW <-> FADU meshing (Figure 2(c)). The grid offset staggers which
        // planes each grid serves, so that when fadus_per_grid_per_dc is
        // smaller than the plane count the union of grids still covers all
        // planes (and draining one grid removes capacity evenly overall).
        if (params.mesh == MeshPattern::kPlaneAligned) {
          const int plane =
              (k + grid * params.fadus_per_grid_per_dc) % fab.planes;
          for (const SwitchId ssw : region.ssws[dc][plane]) {
            topo.add_circuit(ssw, fadu, params.cap_ssw_fadu,
                             ElementState::kActive);
          }
        } else {  // kInterleaved: stripe across all planes
          int j = 0;
          for (int plane = 0; plane < fab.planes; ++plane) {
            for (const SwitchId ssw : region.ssws[dc][plane]) {
              if (j % params.fadus_per_grid_per_dc == k) {
                topo.add_circuit(ssw, fadu, params.cap_ssw_fadu,
                                 ElementState::kActive);
              }
              ++j;
            }
          }
        }
      }
    }

    for (int u = 0; u < params.fauus_per_grid; ++u) {
      Location loc;
      loc.grid = static_cast<std::int16_t>(grid);
      const SwitchId fauu = topo.add_switch(
          SwitchRole::kFauu, params.hgrid_gen, loc, kUnsizedPorts,
          ElementState::kActive, grid_prefix + name_of("fauu", u));
      region.fauus[grid].push_back(fauu);

      // Full mesh FADU <-> FAUU within the grid.
      for (int dc = 0; dc < params.dcs; ++dc) {
        for (const SwitchId fadu : region.fadus[grid][dc]) {
          topo.add_circuit(fadu, fauu, params.cap_fadu_fauu,
                           ElementState::kActive);
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // Backbone boundary: EB, DR, EBB.
  for (int e = 0; e < params.ebs; ++e) {
    region.ebs.push_back(topo.add_switch(SwitchRole::kEb, Generation::kV1,
                                         Location{}, kUnsizedPorts,
                                         ElementState::kActive,
                                         name_of("eb", e)));
  }
  for (int d = 0; d < params.drs; ++d) {
    region.drs.push_back(topo.add_switch(SwitchRole::kDr, Generation::kV1,
                                         Location{}, kUnsizedPorts,
                                         ElementState::kActive,
                                         name_of("dr", d)));
  }
  for (int b = 0; b < params.ebbs; ++b) {
    region.ebbs.push_back(topo.add_switch(SwitchRole::kEbb, Generation::kV1,
                                          Location{}, kUnsizedPorts,
                                          ElementState::kActive,
                                          name_of("ebb", b)));
  }

  region.fauu_eb_circuits_by_eb.resize(params.ebs);
  for (int grid = 0; grid < params.grids; ++grid) {
    for (const SwitchId fauu : region.fauus[grid]) {
      for (int e = 0; e < params.ebs; ++e) {
        const CircuitId cid = topo.add_circuit(
            fauu, region.ebs[e], params.cap_fauu_eb, ElementState::kActive);
        region.fauu_eb_circuits_by_eb[e].push_back(cid);
      }
      for (const SwitchId dr : region.drs) {
        topo.add_circuit(fauu, dr, params.cap_fauu_dr, ElementState::kActive);
      }
    }
  }
  for (const SwitchId eb : region.ebs) {
    for (const SwitchId ebb : region.ebbs) {
      topo.add_circuit(eb, ebb, params.cap_eb_ebb, ElementState::kActive);
    }
  }
  for (const SwitchId dr : region.drs) {
    for (const SwitchId ebb : region.ebbs) {
      topo.add_circuit(dr, ebb, params.cap_dr_ebb, ElementState::kActive);
    }
  }

  // -------------------------------------------------------------------------
  // Port budgets: initial occupancy plus per-role slack. Tight SSW and EB
  // budgets are what gate onboarding of staged hardware until the matching
  // decommission steps have freed ports.
  for (std::size_t i = 0; i < topo.num_switches(); ++i) {
    Switch& s = topo.sw(static_cast<SwitchId>(i));
    const int occupied = topo.occupied_ports(s.id);
    int slack = params.port_slack_agg;
    switch (s.role) {
      case SwitchRole::kRsw:
      case SwitchRole::kFsw:
        slack = params.port_slack_fabric;
        break;
      case SwitchRole::kSsw:
        slack = params.port_slack_ssw;
        break;
      case SwitchRole::kEb:
        slack = params.port_slack_eb;
        break;
      case SwitchRole::kEbb:
        slack = params.port_slack_ebb;
        break;
      default:
        break;
    }
    s.max_ports = occupied + slack;
    if (s.max_ports <= 0) s.max_ports = 1;
  }

  const std::string error = topo.validate();
  if (!error.empty()) {
    throw std::logic_error("build_region produced invalid topology: " + error);
  }
  return region;
}

}  // namespace klotski::topo
